//! Typed errors for search entry points: degenerate inputs are reported to
//! the caller instead of panicking deep inside a labelling or ranking loop.

/// Why a search could not run (or could not produce a winner).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The candidate pool was empty before labelling even started.
    EmptyCandidatePool,
    /// A budget knob (`num_labeled`, `k_s`, `top_k`, …) was zero, so the
    /// pipeline could never select anything.
    ZeroBudget {
        /// Which knob was zero.
        what: &'static str,
    },
    /// The task has no training windows in the requested split — too little
    /// data for even one early-validation epoch.
    InsufficientWindows {
        /// Task id, for the error message.
        task: String,
    },
    /// Every candidate in the pool was quarantined (diverged or panicked);
    /// there is nothing left to rank.
    AllCandidatesQuarantined,
    /// A successive-halving promotion quota does not shrink monotonically
    /// (`pool ≥ stage1 ≥ stage2` is required).
    LadderQuotaNotMonotone {
        /// Which relation was violated.
        what: &'static str,
    },
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::EmptyCandidatePool => {
                write!(f, "candidate pool is empty; nothing to label or rank")
            }
            SearchError::ZeroBudget { what } => {
                write!(f, "search budget `{what}` is zero; the pipeline cannot select a winner")
            }
            SearchError::InsufficientWindows { task } => {
                write!(f, "task {task} has no training windows; cannot run early validation")
            }
            SearchError::AllCandidatesQuarantined => {
                write!(f, "every candidate was quarantined (diverged or panicked); nothing to rank")
            }
            SearchError::LadderQuotaNotMonotone { what } => {
                write!(f, "fidelity-ladder quotas must shrink monotonically: {what}")
            }
        }
    }
}

impl std::error::Error for SearchError {}
