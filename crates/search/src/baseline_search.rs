//! Baseline search strategies the paper compares against (or that the
//! fully-supervised predecessors use): random search, grid-search HPO and a
//! DARTS-style differentiable supernet (the AutoCTS stand-in).

use octs_data::ForecastTask;
use octs_model::operators::{apply_op, channel_projection, OpCtx};
use octs_model::{
    early_validation, train_forecaster, Forecaster, ModelDims, TrainConfig, TrainReport,
};
use octs_space::{ArchDag, ArchHyper, Edge, HyperParams, JointSpace, OpKind};
use octs_tensor::{Adam, Graph, Init, ParamStore, Var};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Random search: label `n` random candidates with the early-validation
/// proxy, then fully train the proxy winner. The "no comparator" control.
pub fn random_search(
    task: &ForecastTask,
    space: &JointSpace,
    n: usize,
    label_cfg: &TrainConfig,
    final_cfg: &TrainConfig,
    seed: u64,
) -> (ArchHyper, TrainReport) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let candidates = space.sample_distinct(n, &mut rng);
    let best = candidates
        .iter()
        .map(|ah| (ah, early_validation(ah, task, label_cfg)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite proxy scores"))
        .map(|(ah, _)| ah.clone())
        .expect("n >= 1");
    let dims = ModelDims::new(task.data.n(), task.data.f(), task.setting);
    let mut fc = Forecaster::new(best.clone(), dims, &task.data.adjacency, final_cfg.seed);
    let report = train_forecaster(&mut fc, task, final_cfg);
    (best, report)
}

/// Grid-search over the structural hyperparameters `H` and `I` for a fixed
/// architecture — the hyperparameter tuning the paper grants its baselines
/// ("we conduct grid-search for them to find the best hidden dimension H and
/// output dimension I"). Returns the best setting and its report.
pub fn grid_search_hpo(
    task: &ForecastTask,
    template: &ArchHyper,
    h_choices: &[usize],
    i_choices: &[usize],
    final_cfg: &TrainConfig,
) -> (ArchHyper, TrainReport) {
    assert!(!h_choices.is_empty() && !i_choices.is_empty());
    let dims = ModelDims::new(task.data.n(), task.data.f(), task.setting);
    let mut best: Option<(ArchHyper, TrainReport)> = None;
    for &h in h_choices {
        for &i in i_choices {
            let mut hp = template.hyper;
            hp.h = h;
            hp.i = i;
            let ah = ArchHyper::new(template.arch.clone(), hp);
            let mut fc = Forecaster::new(ah.clone(), dims, &task.data.adjacency, final_cfg.seed);
            let report = train_forecaster(&mut fc, task, final_cfg);
            let better = match &best {
                Some((_, b)) => report.best_val_mae < b.best_val_mae,
                None => true,
            };
            if better {
                best = Some((ah, report));
            }
        }
    }
    best.expect("non-empty grid")
}

/// DARTS-style supernet configuration (the AutoCTS/AutoSTG-family stand-in).
#[derive(Debug, Clone, Copy)]
pub struct SupernetConfig {
    /// Nodes in the supernet block (fixed — supernets cannot search `C`).
    pub c: usize,
    /// Hidden dimension (fixed — supernets cannot search `H`).
    pub h: usize,
    /// Output dimension for its output module.
    pub i: usize,
    /// Alternating optimization epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Weight learning rate.
    pub lr_w: f32,
    /// Architecture (α) learning rate.
    pub lr_alpha: f32,
    /// Cap on windows per epoch.
    pub max_windows: usize,
    /// Seed.
    pub seed: u64,
}

impl SupernetConfig {
    /// CPU-scaled defaults.
    pub fn scaled() -> Self {
        Self {
            c: 4,
            h: 8,
            i: 16,
            epochs: 4,
            batch: 4,
            lr_w: 3e-3,
            lr_alpha: 1e-2,
            max_windows: 32,
            seed: 0,
        }
    }

    /// Tiny defaults for tests.
    pub fn test() -> Self {
        Self {
            c: 3,
            h: 4,
            i: 8,
            epochs: 1,
            batch: 4,
            lr_w: 3e-3,
            lr_alpha: 1e-2,
            max_windows: 8,
            seed: 0,
        }
    }
}

/// Trains a weight-sharing supernet (Eq. 5–6) with alternating weight/α
/// steps and derives the argmax architecture (≤ 2 in-edges per node, one op
/// per pair). This reproduces the *framework* AutoCTS represents: note it
/// can only search the architecture, with `C`, `H`, `I` fixed up front —
/// exactly the limitation the joint space removes.
pub fn supernet_search(task: &ForecastTask, cfg: &SupernetConfig) -> ArchHyper {
    use octs_data::Split;
    let mut ps = ParamStore::new(cfg.seed);
    let mut opt_w = Adam::new(cfg.lr_w, 1e-4);
    let mut opt_a = Adam::new(cfg.lr_alpha, 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x5);
    let n = task.data.n();
    let f = task.data.f();
    let out_steps = task.setting.out_steps();
    let adj_fwd = task.data.adjacency.transition();
    let adj_bwd = task.data.adjacency.transition_reverse();

    let pairs: Vec<(usize, usize)> = (1..cfg.c).flat_map(|j| (0..j).map(move |i| (i, j))).collect();

    let forward = |ps: &mut ParamStore, x: &octs_tensor::Tensor| -> (Graph, Var) {
        let g = Graph::new();
        let xin = g.constant(x.clone());
        let mut cur = channel_projection(ps, &g, "input", &xin, f, cfg.h);
        // supernet block: every pair mixes all ops, weighted by softmax(α)
        let mut nodes: Vec<Var> = vec![cur.clone()];
        for j in 1..cfg.c {
            let mut acc: Option<Var> = None;
            #[allow(clippy::needless_range_loop)] // `i` also names parameters
            for i in 0..j {
                let alpha = ps.var(&g, &format!("alpha/{i}_{j}"), &[1, OpKind::COUNT], Init::Zeros);
                let w = alpha.softmax(); // [1, |O|]
                let mut mixed: Option<Var> = None;
                for (oi, op) in OpKind::ALL.iter().enumerate() {
                    let y = {
                        let mut ctx = OpCtx {
                            g: &g,
                            ps,
                            h: cfg.h,
                            adj_fwd: adj_fwd.clone(),
                            adj_bwd: adj_bwd.clone(),
                        };
                        apply_op(*op, &format!("sup/e{i}_{j}/{oi}"), &nodes[i], &mut ctx)
                    };
                    // weight each op output by its softmax prob, keeping α in
                    // the graph so it receives gradients (Eq. 5)
                    let w_slice = w.slice_axis(1, oi, 1).reshape([1]);
                    let scaled = scale_all(&g, &y, &w_slice);
                    mixed = Some(match mixed {
                        Some(m) => m.add(&scaled),
                        None => scaled,
                    });
                }
                let mixed = mixed.expect("|O| > 0");
                acc = Some(match acc {
                    Some(a) => a.add(&mixed),
                    None => mixed,
                });
            }
            nodes.push(acc.expect("j >= 1"));
        }
        cur = nodes.last().expect("c >= 2").clone();
        // output module (same shape contract as Forecaster)
        let s = x.shape().to_vec();
        let last =
            cur.slice_axis(3, s[3] - 1, 1).reshape([s[0], cfg.h, n]).permute(&[0, 2, 1]).relu();
        let o1 = octs_model::layers::linear(ps, &g, "out/fc1", &last, cfg.h, cfg.i).relu();
        let o2 = octs_model::layers::linear(ps, &g, "out/fc2", &o1, cfg.i, out_steps);
        (g, o2.permute(&[0, 2, 1]))
    };

    let train_windows = task.windows(Split::Train);
    let val_windows = task.windows(Split::Val);
    let step = |ps: &mut ParamStore,
                opt: &mut Adam,
                windows: &[usize],
                rng: &mut ChaCha8Rng,
                alpha_step: bool| {
        let mut pool = windows.to_vec();
        pool.shuffle(rng);
        pool.truncate(cfg.max_windows);
        for chunk in pool.chunks(cfg.batch) {
            let batch = task.make_batch(chunk);
            let (g, pred) = forward(ps, &batch.x);
            let loss = pred.mae_loss(&g.constant(batch.y.clone()));
            g.backward(&loss);
            let mut grads: Vec<_> = g
                .param_grads()
                .into_iter()
                .filter(|(name, _)| name.starts_with("alpha/") == alpha_step)
                .collect();
            octs_tensor::clip_grad_norm(&mut grads, 5.0);
            opt.step(ps, &grads);
        }
    };

    for _epoch in 0..cfg.epochs {
        step(&mut ps, &mut opt_w, &train_windows, &mut rng, false);
        step(&mut ps, &mut opt_a, &val_windows, &mut rng, true);
    }

    // Derive: per node keep the (up to) 2 strongest in-edges, argmax op each.
    let mut edges = Vec::new();
    for j in 1..cfg.c {
        let mut scored: Vec<(f32, Edge)> = Vec::new();
        for &(i, jj) in pairs.iter().filter(|&&(_, jj)| jj == j) {
            let alpha = ps.get(&format!("alpha/{i}_{jj}")).expect("trained alpha").clone();
            let (mut best_o, mut best_v) = (0usize, f32::NEG_INFINITY);
            for (oi, &v) in alpha.data().iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best_o = oi;
                }
            }
            scored.push((best_v, Edge { from: i, to: j, op: OpKind::from_index(best_o) }));
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite alphas"));
        for (_, e) in scored.into_iter().take(2.min(j)) {
            edges.push(e);
        }
    }
    let arch = ArchDag::new(cfg.c, edges).expect("derived architecture is valid");
    let hyper = HyperParams { b: 1, c: cfg.c, h: cfg.h, i: cfg.i, u: 0, delta: 0 };
    ArchHyper::new(arch, hyper)
}

/// Multiplies every element of `x` by the scalar var `s` (shape `[1]`).
fn scale_all(g: &Graph, x: &Var, s: &Var) -> Var {
    let shape = x.shape();
    let numel: usize = shape.iter().product();
    let ones = g.constant(octs_tensor::Tensor::ones([numel, 1]));
    let expanded = ones.matmul(&s.reshape([1, 1])).reshape(shape);
    x.mul(&expanded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_data::{DatasetProfile, Domain, ForecastSetting};

    fn task() -> ForecastTask {
        let p = DatasetProfile::custom("bs", Domain::Traffic, 3, 200, 24, 0.3, 0.1, 10.0, 13);
        ForecastTask::new(p.generate(0), ForecastSetting::multi(4, 2), 0.6, 0.2, 2)
    }

    #[test]
    fn random_search_returns_trained_model() {
        let t = task();
        let (ah, report) = random_search(
            &t,
            &JointSpace::tiny(),
            3,
            &TrainConfig::test(),
            &TrainConfig::test(),
            1,
        );
        assert!(report.best_val_mae.is_finite());
        assert_eq!(ah.arch.c(), ah.hyper.c);
    }

    #[test]
    fn grid_search_sweeps_h_i() {
        let t = task();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let template = JointSpace::tiny().sample(&mut rng);
        let (best, report) = grid_search_hpo(&t, &template, &[4, 8], &[8], &TrainConfig::test());
        assert!(report.best_val_mae.is_finite());
        assert!([4usize, 8].contains(&best.hyper.h));
        assert_eq!(best.hyper.i, 8);
        assert_eq!(best.arch, template.arch, "grid search must not change the architecture");
    }

    #[test]
    fn supernet_derives_valid_arch() {
        let t = task();
        let ah = supernet_search(&t, &SupernetConfig::test());
        assert_eq!(ah.arch.c(), 3);
        assert!(ah.arch.num_ops() >= 2);
        // every node has at most 2 in-edges (validated by construction)
        assert_eq!(ah.hyper.c, 3);
    }

    #[test]
    fn supernet_alphas_receive_gradient() {
        // After one run, alpha values should have moved away from zero-init.
        let t = task();
        let cfg = SupernetConfig { epochs: 2, ..SupernetConfig::test() };
        let _ = supernet_search(&t, &cfg);
        // the derived arch existing proves alphas were created; movement is
        // covered implicitly — a fully-zero alpha would still derive, so
        // check determinism instead:
        let a = supernet_search(&t, &cfg);
        let b = supernet_search(&t, &cfg);
        assert_eq!(a, b);
    }
}
