//! Comparator-guided evolutionary search over the joint space (Section 3.3).

use crate::rank::{round_robin_rank_checked, tournament_rank_checked, RankOutcome};
use octs_comparator::Tahc;
use octs_space::{ArchHyper, JointSpace};
use octs_tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Evolutionary-search knobs (paper: `p₁ = 0.8`, `p₂ = 0.2`, `k_p = 10`,
/// top-3 final candidates; `K_s` up to 600 000 — scaled here).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvolveConfig {
    /// Initial random sample count `K_s`.
    pub k_s: usize,
    /// Opponents per candidate in the seeding tournament.
    pub tournament_rounds: usize,
    /// Population size `k_p`.
    pub k_p: usize,
    /// Evolution generations.
    pub generations: usize,
    /// Crossover probability `p₁`.
    pub p_crossover: f64,
    /// Mutation probability `p₂`.
    pub p_mutation: f64,
    /// How many top candidates to return.
    pub top_k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl EvolveConfig {
    /// CPU-scaled defaults mirroring the paper's settings.
    pub fn scaled() -> Self {
        Self {
            k_s: 2048,
            tournament_rounds: 2,
            k_p: 10,
            generations: 8,
            p_crossover: 0.8,
            p_mutation: 0.2,
            top_k: 3,
            seed: 0,
        }
    }

    /// Tiny defaults for tests.
    pub fn test() -> Self {
        Self {
            k_s: 24,
            tournament_rounds: 2,
            k_p: 6,
            generations: 2,
            p_crossover: 0.8,
            p_mutation: 0.2,
            top_k: 2,
            seed: 0,
        }
    }
}

/// Runs the heuristic search: sample `K_s` admissible arch-hypers, seed a
/// population via a sparse tournament, evolve with comparator-judged
/// survival, and return the Round-Robin top-K of the final population.
///
/// Comparator calls fan out across threads in fixed-size chunks (see
/// [`crate::rank`] — the evolutionary loop's tiny per-generation round-robins
/// are exactly the schedules that used to drown in per-item task overhead);
/// the result is byte-identical for any `RAYON_NUM_THREADS`, because
/// candidate generation stays on the master RNG stream and match schedules
/// come from per-candidate streams. The comparator's embedding cache
/// persists across generations, so surviving candidates are never
/// re-encoded. Candidates whose comparator evaluation panics are quarantined
/// by the rankers (never promoted into the surviving population while
/// healthy candidates remain) and surface through the
/// `evolve.quarantined` counter.
pub fn evolve_search(
    tahc: &Tahc,
    prelim: Option<&Tensor>,
    space: &JointSpace,
    cfg: &EvolveConfig,
) -> Vec<ArchHyper> {
    let _obs = octs_obs::span_detail("rank.evolve", format!("k_s {}", cfg.k_s));
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let candidates = space.sample_distinct(cfg.k_s, &mut rng);
    octs_obs::counter("evolve.sampled", candidates.len() as u64);
    let mut quarantined_total = 0usize;
    let mut tally = |out: &RankOutcome| quarantined_total += out.quarantined.len();

    // Seed population from a cheap tournament ranking.
    let seeding =
        tournament_rank_checked(tahc, prelim, &candidates, cfg.tournament_rounds, cfg.seed ^ 0x70);
    tally(&seeding);
    let mut population: Vec<ArchHyper> =
        seeding.order.iter().take(cfg.k_p).map(|&i| candidates[i].clone()).collect();

    for _gen in 0..cfg.generations {
        // Generate offspring.
        let mut offspring = Vec::new();
        for i in 0..population.len() {
            if rng.gen_bool(cfg.p_crossover) {
                let j = rng.gen_range(0..population.len());
                if j != i {
                    offspring.push(space.crossover(&population[i], &population[j], &mut rng));
                }
            }
            if rng.gen_bool(cfg.p_mutation) {
                offspring.push(space.mutate(&population[i], &mut rng));
            }
        }
        population.extend(offspring);
        // Survival: Round-Robin over the (small) population, keep k_p.
        let survival = round_robin_rank_checked(tahc, prelim, &population);
        tally(&survival);
        population = survival.order.iter().take(cfg.k_p).map(|&i| population[i].clone()).collect();
    }

    let final_rank = round_robin_rank_checked(tahc, prelim, &population);
    tally(&final_rank);
    if quarantined_total > 0 {
        octs_obs::counter("evolve.quarantined", quarantined_total as u64);
    }
    final_rank.order.iter().take(cfg.top_k).map(|&i| population[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_comparator::TahcConfig;

    #[test]
    fn returns_topk_valid_candidates() {
        let space = JointSpace::scaled();
        let tahc = Tahc::new(
            TahcConfig { task_aware: false, ..TahcConfig::test() },
            space.hyper.clone(),
            0,
        );
        let cfg = EvolveConfig::test();
        let top = evolve_search(&tahc, None, &space, &cfg);
        assert_eq!(top.len(), cfg.top_k);
        for ah in &top {
            assert!(space.hyper.contains(&ah.hyper));
            assert_eq!(ah.arch.c(), ah.hyper.c);
            assert!(ah.arch.has_both_st());
        }
    }

    #[test]
    fn search_is_deterministic_given_seed() {
        let space = JointSpace::scaled();
        let cfg = EvolveConfig::test();
        let t1 = Tahc::new(
            TahcConfig { task_aware: false, ..TahcConfig::test() },
            space.hyper.clone(),
            0,
        );
        let t2 = Tahc::new(
            TahcConfig { task_aware: false, ..TahcConfig::test() },
            space.hyper.clone(),
            0,
        );
        let a = evolve_search(&t1, None, &space, &cfg);
        let b = evolve_search(&t2, None, &space, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn search_identical_across_thread_counts() {
        // The tentpole determinism guarantee: same seed => byte-identical
        // top-k whether comparator calls run on 1 worker or many. Safe to
        // toggle the env var mid-process because the vendored rayon reads it
        // per parallel call, and no other test depends on its value (results
        // are thread-count-independent by construction).
        let space = JointSpace::scaled();
        let cfg = EvolveConfig::test();
        let saved = std::env::var("RAYON_NUM_THREADS").ok();

        std::env::set_var("RAYON_NUM_THREADS", "1");
        let t1 = Tahc::new(
            TahcConfig { task_aware: false, ..TahcConfig::test() },
            space.hyper.clone(),
            0,
        );
        let serial = evolve_search(&t1, None, &space, &cfg);

        std::env::set_var("RAYON_NUM_THREADS", "4");
        let t2 = Tahc::new(
            TahcConfig { task_aware: false, ..TahcConfig::test() },
            space.hyper.clone(),
            0,
        );
        let parallel = evolve_search(&t2, None, &space, &cfg);

        match saved {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        assert_eq!(serial, parallel, "top-k must not depend on worker count");
    }

    #[test]
    fn larger_ks_explores_more() {
        // sanity: config with more samples doesn't crash and still yields top_k
        let space = JointSpace::scaled();
        let tahc = Tahc::new(
            TahcConfig { task_aware: false, ..TahcConfig::test() },
            space.hyper.clone(),
            0,
        );
        let cfg = EvolveConfig { k_s: 64, ..EvolveConfig::test() };
        let top = evolve_search(&tahc, None, &space, &cfg);
        assert_eq!(top.len(), cfg.top_k);
    }
}
