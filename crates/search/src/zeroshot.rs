//! Algorithm 2: zero-shot search for an unseen task — embed, rank, train
//! the top-K, keep the validation winner.

use crate::error::SearchError;
use crate::evolve::{evolve_search, EvolveConfig};
use crate::fidelity::promote_by_score;
use octs_comparator::{label_one, LabeledAh, Tahc, TaskEmbedder};
use octs_data::ForecastTask;
use octs_model::{train_forecaster, Forecaster, ModelDims, TrainConfig, TrainReport};
use octs_space::{ArchHyper, JointSpace};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Wall-clock breakdown of one zero-shot search (drives Fig. 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchTiming {
    /// Task-embedding time (TS2Vec encoding of the unseen task).
    pub embed: Duration,
    /// Comparator ranking time (tournament + evolution + round-robin).
    pub rank: Duration,
    /// Final training time of the top-K candidates.
    pub train: Duration,
}

impl SearchTiming {
    /// Search latency as the paper defines it: embedding + ranking.
    pub fn search(&self) -> Duration {
        self.embed + self.rank
    }
}

/// Outcome of a zero-shot search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The selected arch-hyper `ah*`.
    pub best: ArchHyper,
    /// Training report of the winner.
    pub best_report: TrainReport,
    /// All trained finalists `(candidate, report)`, ranked by comparator.
    pub finalists: Vec<(ArchHyper, TrainReport)>,
    /// Wall-clock breakdown.
    pub timing: SearchTiming,
}

/// Runs Algorithm 2 on an unseen task with a pre-trained T-AHC.
///
/// The task's preliminary embedding is produced by the *frozen* embedder (a
/// few seconds), candidates are ranked zero-shot by the comparator, and only
/// the `top_k` finalists are actually trained — this is where the paper's
/// orders-of-magnitude GPU-hour savings come from.
pub fn zero_shot_search(
    tahc: &Tahc,
    embedder: &mut TaskEmbedder,
    task: &ForecastTask,
    space: &JointSpace,
    evolve_cfg: &EvolveConfig,
    train_cfg: &TrainConfig,
) -> SearchOutcome {
    let t0 = Instant::now();
    let obs_embed = octs_obs::span_detail("phase.embed", task.id().to_string());
    let prelim = embedder.preliminary(task);
    drop(obs_embed);
    let embed = t0.elapsed();

    let t1 = Instant::now();
    let obs_rank = octs_obs::span_detail("phase.rank", evolve_cfg.k_s.to_string());
    let top = evolve_search(tahc, Some(&prelim), space, evolve_cfg);
    drop(obs_rank);
    let rank = t1.elapsed();

    let t2 = Instant::now();
    let obs_final = octs_obs::span_detail("phase.final_train", top.len().to_string());
    let dims = ModelDims::new(task.data.n(), task.data.f(), task.setting);
    let mut finalists = Vec::with_capacity(top.len());
    for (i, ah) in top.into_iter().enumerate() {
        let mut fc = Forecaster::new(
            ah.clone(),
            dims,
            &task.data.adjacency,
            train_cfg.seed ^ (i as u64 + 1),
        );
        let report = train_forecaster(&mut fc, task, train_cfg);
        finalists.push((ah, report));
    }
    drop(obs_final);
    let train = t2.elapsed();

    let best_idx = finalists
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.1.best_val_mae.partial_cmp(&b.1.best_val_mae).expect("finite MAEs")
        })
        .map(|(i, _)| i)
        .expect("top_k >= 1");
    let (best, best_report) = finalists[best_idx].clone();

    SearchOutcome { best, best_report, finalists, timing: SearchTiming { embed, rank, train } }
}

/// Outcome of a rank-only zero-shot pass ([`zero_shot_rank`]): the
/// comparator-ranked candidates and the embed/rank wall-clock, with no
/// training performed.
#[derive(Clone, Debug)]
pub struct ZeroShotRank {
    /// Candidates in comparator-rank order (best first).
    pub ranked: Vec<ArchHyper>,
    /// Wall-clock breakdown (`train` is always zero).
    pub timing: SearchTiming,
}

/// The embed + rank prefix of Algorithm 2, stopping before any training:
/// embeds the unseen task with the frozen encoder and ranks candidates
/// zero-shot with the pre-trained comparator. This is the paper's "search in
/// seconds" claim in isolation — the pretrained-artifact benches gate on its
/// latency — and the cheapest way to get a candidate shortlist for an
/// external training budget.
pub fn zero_shot_rank(
    tahc: &Tahc,
    embedder: &mut TaskEmbedder,
    task: &ForecastTask,
    space: &JointSpace,
    evolve_cfg: &EvolveConfig,
) -> ZeroShotRank {
    let t0 = Instant::now();
    let obs_embed = octs_obs::span_detail("phase.embed", task.id().to_string());
    let prelim = embedder.preliminary(task);
    drop(obs_embed);
    let embed = t0.elapsed();

    let t1 = Instant::now();
    let obs_rank = octs_obs::span_detail("phase.rank", evolve_cfg.k_s.to_string());
    let ranked = evolve_search(tahc, Some(&prelim), space, evolve_cfg);
    drop(obs_rank);
    let rank = t1.elapsed();

    ZeroShotRank { ranked, timing: SearchTiming { embed, rank, train: Duration::ZERO } }
}

/// Finalist-promotion rung reused from the fidelity ladder: instead of
/// fully training every comparator-ranked candidate, give each a cheap
/// proxy first and fully train only the promoted survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinalistPromotion {
    /// Epochs of the cheap proxy each ranked candidate gets.
    pub proxy_epochs: usize,
    /// How many proxy survivors get the full training budget.
    pub finalists: usize,
}

impl FinalistPromotion {
    /// Defaults: 1-epoch proxy, 2 full trainings.
    pub fn test() -> Self {
        Self { proxy_epochs: 1, finalists: 2 }
    }
}

/// [`zero_shot_search`] with the fidelity ladder's promotion rung between
/// ranking and final training: the comparator's `top_k` candidates are
/// proxy-trained for `promotion.proxy_epochs` epochs, the best
/// `promotion.finalists` by proxy score (deterministic
/// [`promote_by_score`] order) get the full `train_cfg` budget, and the
/// validation winner is kept. With `evolve_cfg.top_k` widened beyond what
/// full training could afford, this explores more finalists for less cost.
///
/// Candidates whose proxy diverges or panics are quarantined; if every
/// ranked candidate is quarantined the search reports
/// [`SearchError::AllCandidatesQuarantined`].
pub fn zero_shot_search_laddered(
    tahc: &Tahc,
    embedder: &mut TaskEmbedder,
    task: &ForecastTask,
    space: &JointSpace,
    evolve_cfg: &EvolveConfig,
    promotion: &FinalistPromotion,
    train_cfg: &TrainConfig,
) -> Result<SearchOutcome, SearchError> {
    if promotion.finalists == 0 {
        return Err(SearchError::ZeroBudget { what: "promotion.finalists" });
    }
    if promotion.proxy_epochs == 0 {
        return Err(SearchError::ZeroBudget { what: "promotion.proxy_epochs" });
    }
    let t0 = Instant::now();
    let obs_embed = octs_obs::span_detail("phase.embed", task.id().to_string());
    let prelim = embedder.preliminary(task);
    drop(obs_embed);
    let embed = t0.elapsed();

    let t1 = Instant::now();
    let obs_rank = octs_obs::span_detail("phase.rank", evolve_cfg.k_s.to_string());
    let top = evolve_search(tahc, Some(&prelim), space, evolve_cfg);
    drop(obs_rank);
    let rank = t1.elapsed();

    let t2 = Instant::now();
    // Promotion rung: cheap proxies for every ranked candidate, full budget
    // only for the promoted survivors. Unit ids follow ranking order (the
    // ranked list is already deterministic for any thread count).
    let obs_proxy = octs_obs::span_detail("phase.proxy", top.len().to_string());
    let proxy_cfg = TrainConfig { epochs: promotion.proxy_epochs, ..train_cfg.clone() };
    let idx: Vec<usize> = (0..top.len()).collect();
    let proxied: Vec<LabeledAh> =
        idx.par_iter().map(|&i| label_one(&top[i], task, i as u64, &proxy_cfg)).collect();
    let proxy_refs: Vec<&LabeledAh> = proxied.iter().collect();
    let promoted = promote_by_score(&proxy_refs, promotion.finalists);
    drop(obs_proxy);
    if promoted.is_empty() {
        return Err(SearchError::AllCandidatesQuarantined);
    }

    let obs_final = octs_obs::span_detail("phase.final_train", promoted.len().to_string());
    let dims = ModelDims::new(task.data.n(), task.data.f(), task.setting);
    let mut finalists = Vec::with_capacity(promoted.len());
    for (i, labeled) in promoted.into_iter().enumerate() {
        let mut fc = Forecaster::new(
            labeled.ah.clone(),
            dims,
            &task.data.adjacency,
            train_cfg.seed ^ (i as u64 + 1),
        );
        let report = train_forecaster(&mut fc, task, train_cfg);
        finalists.push((labeled.ah.clone(), report));
    }
    drop(obs_final);
    let train = t2.elapsed();

    let best_idx = finalists
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.1.best_val_mae.partial_cmp(&b.1.best_val_mae).expect("finite MAEs")
        })
        .map(|(i, _)| i)
        .expect("finalists >= 1");
    let (best, best_report) = finalists[best_idx].clone();
    Ok(SearchOutcome { best, best_report, finalists, timing: SearchTiming { embed, rank, train } })
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_comparator::{TahcConfig, TaskEmbedConfig, Ts2VecConfig};
    use octs_data::{DatasetProfile, Domain, ForecastSetting};

    fn small_task() -> ForecastTask {
        let p = DatasetProfile::custom("zs", Domain::Traffic, 4, 220, 24, 0.3, 0.1, 10.0, 9);
        ForecastTask::new(p.generate(0), ForecastSetting::multi(4, 2), 0.6, 0.2, 2)
    }

    #[test]
    fn end_to_end_zero_shot_search() {
        let space = JointSpace::tiny();
        let tahc = Tahc::new(TahcConfig::test(), space.hyper.clone(), 0);
        let mut embedder = TaskEmbedder::new(TaskEmbedConfig::test(), Ts2VecConfig::test(), 1);
        let task = small_task();
        let evolve_cfg = EvolveConfig { k_s: 12, generations: 1, top_k: 2, ..EvolveConfig::test() };
        let train_cfg = TrainConfig::test();
        let out = zero_shot_search(&tahc, &mut embedder, &task, &space, &evolve_cfg, &train_cfg);
        assert_eq!(out.finalists.len(), 2);
        assert!(out.best_report.best_val_mae.is_finite());
        // winner must be the min-val finalist
        let min = out.finalists.iter().map(|(_, r)| r.best_val_mae).fold(f32::INFINITY, f32::min);
        assert_eq!(out.best_report.best_val_mae, min);
        assert!(out.timing.search() > Duration::ZERO);
        assert!(out.timing.train > Duration::ZERO);
    }

    #[test]
    fn laddered_zero_shot_trains_only_promoted_finalists() {
        let space = JointSpace::tiny();
        let tahc = Tahc::new(TahcConfig::test(), space.hyper.clone(), 0);
        let mut embedder = TaskEmbedder::new(TaskEmbedConfig::test(), Ts2VecConfig::test(), 1);
        let task = small_task();
        // Rank wider than full training could afford, promote 2.
        let evolve_cfg = EvolveConfig { k_s: 12, generations: 1, top_k: 4, ..EvolveConfig::test() };
        let promotion = FinalistPromotion { proxy_epochs: 1, finalists: 2 };
        let train_cfg = TrainConfig::test();
        let out = zero_shot_search_laddered(
            &tahc,
            &mut embedder,
            &task,
            &space,
            &evolve_cfg,
            &promotion,
            &train_cfg,
        )
        .unwrap();
        assert_eq!(out.finalists.len(), 2, "only promoted survivors get full training");
        assert!(out.best_report.best_val_mae.is_finite());
        let min = out.finalists.iter().map(|(_, r)| r.best_val_mae).fold(f32::INFINITY, f32::min);
        assert_eq!(out.best_report.best_val_mae, min);

        // Deterministic: a rerun promotes and selects identically.
        let tahc2 = Tahc::new(TahcConfig::test(), space.hyper.clone(), 0);
        let mut embedder2 = TaskEmbedder::new(TaskEmbedConfig::test(), Ts2VecConfig::test(), 1);
        let again = zero_shot_search_laddered(
            &tahc2,
            &mut embedder2,
            &task,
            &space,
            &evolve_cfg,
            &promotion,
            &train_cfg,
        )
        .unwrap();
        assert_eq!(again.best, out.best);
        assert_eq!(
            again.best_report.best_val_mae.to_bits(),
            out.best_report.best_val_mae.to_bits()
        );
    }

    #[test]
    fn laddered_zero_shot_rejects_zero_budgets() {
        let space = JointSpace::tiny();
        let tahc = Tahc::new(TahcConfig::test(), space.hyper.clone(), 0);
        let mut embedder = TaskEmbedder::new(TaskEmbedConfig::test(), Ts2VecConfig::test(), 1);
        let task = small_task();
        let evolve_cfg = EvolveConfig { k_s: 12, generations: 1, ..EvolveConfig::test() };
        let err = zero_shot_search_laddered(
            &tahc,
            &mut embedder,
            &task,
            &space,
            &evolve_cfg,
            &FinalistPromotion { proxy_epochs: 1, finalists: 0 },
            &TrainConfig::test(),
        )
        .unwrap_err();
        assert_eq!(err, crate::SearchError::ZeroBudget { what: "promotion.finalists" });
    }
}
