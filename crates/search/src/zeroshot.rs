//! Algorithm 2: zero-shot search for an unseen task — embed, rank, train
//! the top-K, keep the validation winner.

use crate::evolve::{evolve_search, EvolveConfig};
use octs_comparator::{Tahc, TaskEmbedder};
use octs_data::ForecastTask;
use octs_model::{train_forecaster, Forecaster, ModelDims, TrainConfig, TrainReport};
use octs_space::{ArchHyper, JointSpace};
use std::time::{Duration, Instant};

/// Wall-clock breakdown of one zero-shot search (drives Fig. 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchTiming {
    /// Task-embedding time (TS2Vec encoding of the unseen task).
    pub embed: Duration,
    /// Comparator ranking time (tournament + evolution + round-robin).
    pub rank: Duration,
    /// Final training time of the top-K candidates.
    pub train: Duration,
}

impl SearchTiming {
    /// Search latency as the paper defines it: embedding + ranking.
    pub fn search(&self) -> Duration {
        self.embed + self.rank
    }
}

/// Outcome of a zero-shot search.
#[derive(Clone)]
pub struct SearchOutcome {
    /// The selected arch-hyper `ah*`.
    pub best: ArchHyper,
    /// Training report of the winner.
    pub best_report: TrainReport,
    /// All trained finalists `(candidate, report)`, ranked by comparator.
    pub finalists: Vec<(ArchHyper, TrainReport)>,
    /// Wall-clock breakdown.
    pub timing: SearchTiming,
}

/// Runs Algorithm 2 on an unseen task with a pre-trained T-AHC.
///
/// The task's preliminary embedding is produced by the *frozen* embedder (a
/// few seconds), candidates are ranked zero-shot by the comparator, and only
/// the `top_k` finalists are actually trained — this is where the paper's
/// orders-of-magnitude GPU-hour savings come from.
pub fn zero_shot_search(
    tahc: &Tahc,
    embedder: &mut TaskEmbedder,
    task: &ForecastTask,
    space: &JointSpace,
    evolve_cfg: &EvolveConfig,
    train_cfg: &TrainConfig,
) -> SearchOutcome {
    let t0 = Instant::now();
    let obs_embed = octs_obs::span_detail("phase.embed", task.id().to_string());
    let prelim = embedder.preliminary(task);
    drop(obs_embed);
    let embed = t0.elapsed();

    let t1 = Instant::now();
    let obs_rank = octs_obs::span_detail("phase.rank", evolve_cfg.k_s.to_string());
    let top = evolve_search(tahc, Some(&prelim), space, evolve_cfg);
    drop(obs_rank);
    let rank = t1.elapsed();

    let t2 = Instant::now();
    let obs_final = octs_obs::span_detail("phase.final_train", top.len().to_string());
    let dims = ModelDims::new(task.data.n(), task.data.f(), task.setting);
    let mut finalists = Vec::with_capacity(top.len());
    for (i, ah) in top.into_iter().enumerate() {
        let mut fc = Forecaster::new(
            ah.clone(),
            dims,
            &task.data.adjacency,
            train_cfg.seed ^ (i as u64 + 1),
        );
        let report = train_forecaster(&mut fc, task, train_cfg);
        finalists.push((ah, report));
    }
    drop(obs_final);
    let train = t2.elapsed();

    let best_idx = finalists
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.1.best_val_mae.partial_cmp(&b.1.best_val_mae).expect("finite MAEs")
        })
        .map(|(i, _)| i)
        .expect("top_k >= 1");
    let (best, best_report) = finalists[best_idx].clone();

    SearchOutcome { best, best_report, finalists, timing: SearchTiming { embed, rank, train } }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_comparator::{TahcConfig, TaskEmbedConfig, Ts2VecConfig};
    use octs_data::{DatasetProfile, Domain, ForecastSetting};

    fn small_task() -> ForecastTask {
        let p = DatasetProfile::custom("zs", Domain::Traffic, 4, 220, 24, 0.3, 0.1, 10.0, 9);
        ForecastTask::new(p.generate(0), ForecastSetting::multi(4, 2), 0.6, 0.2, 2)
    }

    #[test]
    fn end_to_end_zero_shot_search() {
        let space = JointSpace::tiny();
        let tahc = Tahc::new(TahcConfig::test(), space.hyper.clone(), 0);
        let mut embedder = TaskEmbedder::new(TaskEmbedConfig::test(), Ts2VecConfig::test(), 1);
        let task = small_task();
        let evolve_cfg = EvolveConfig { k_s: 12, generations: 1, top_k: 2, ..EvolveConfig::test() };
        let train_cfg = TrainConfig::test();
        let out = zero_shot_search(&tahc, &mut embedder, &task, &space, &evolve_cfg, &train_cfg);
        assert_eq!(out.finalists.len(), 2);
        assert!(out.best_report.best_val_mae.is_finite());
        // winner must be the min-val finalist
        let min = out.finalists.iter().map(|(_, r)| r.best_val_mae).fold(f32::INFINITY, f32::min);
        assert_eq!(out.best_report.best_val_mae, min);
        assert!(out.timing.search() > Duration::ZERO);
        assert!(out.timing.train > Duration::ZERO);
    }
}
