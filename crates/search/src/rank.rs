//! Comparator-based ranking: tournament scoring and Round-Robin top-K.
//!
//! The comparator is a neural network and does not guarantee transitivity,
//! so the paper selects the final top-K by Round-Robin win counting rather
//! than a comparison sort (Section 3.3).
//!
//! Both rankers build their full match schedule up front and then judge every
//! match with `rayon` against a shared `&Tahc` (comparator inference is
//! `&self` and memoizes per-candidate GIN embeddings, so a candidate that
//! plays many opponents is encoded once). Outcome collection preserves
//! schedule order and opponent schedules come from per-candidate RNG streams
//! derived from the master seed, so rankings are byte-identical for any
//! thread count.
//!
//! Fan-out granularity: probes and matches are batched into fixed-size
//! chunks, one chunk per rayon task, instead of one task per item. A single
//! comparator call is microseconds of work, so item-granular fan-out drowned
//! in scheduling overhead — BENCH_search_parallel.json regressed *below* 1×
//! with extra threads before chunking. Small schedules (at most one chunk)
//! skip the parallel runtime entirely, which is what the evolutionary loop's
//! many tiny round-robins hit. Chunk outputs are collected in schedule
//! order, so the deterministic top-k contract is untouched.

use octs_comparator::{CacheStats, Tahc};
use octs_space::ArchHyper;
use octs_tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Probes or matches judged by one rayon task. Comparator inference on the
/// test-sized configs runs in the tens of microseconds, so a batch this size
/// gives each task hundreds of microseconds of real work — coarse enough
/// that thread-spawn/scheduling overhead stays in the noise, fine enough
/// that a `K_s = 2048` tournament still splits into dozens of tasks.
const RANK_CHUNK: usize = 64;

/// Runs `f(i)` for `i in 0..n`, batched into [`RANK_CHUNK`]-sized chunks
/// with one rayon task per chunk. Outputs come back in index order (the
/// vendored rayon's `collect` preserves input order and chunks are
/// contiguous), so callers observe exactly the serial result. Work that
/// fits in a single chunk never touches the parallel runtime.
fn par_chunked<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync + Send) -> Vec<R> {
    if n <= RANK_CHUNK {
        return (0..n).map(f).collect();
    }
    let starts: Vec<usize> = (0..n).step_by(RANK_CHUNK).collect();
    let per_chunk: Vec<Vec<R>> = starts
        .par_iter()
        .map(|&start| (start..(start + RANK_CHUNK).min(n)).map(&f).collect())
        .collect();
    per_chunk.into_iter().flatten().collect()
}

/// Outcome of a quarantine-aware ranking pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankOutcome {
    /// Healthy candidates by descending win count (ties keep index order),
    /// followed by the quarantined candidates in index order — so the vector
    /// is always a permutation of the pool and legacy callers can keep
    /// taking a prefix.
    pub order: Vec<usize>,
    /// Candidate indices whose comparator evaluation panicked.
    pub quarantined: Vec<usize>,
}

/// Probes every candidate's comparator embedding under `catch_unwind` (in
/// parallel). A candidate whose encoding panics — via an injected
/// [`octs_fault::maybe_panic_compare`] or a genuine bug — is marked
/// unhealthy; because [`Tahc::embedding`] memoizes, a successful probe makes
/// the subsequent match phase reuse the cached encoding.
fn probe_candidates(tahc: &Tahc, candidates: &[ArchHyper]) -> Vec<bool> {
    let instrumented = octs_obs::armed();
    par_chunked(candidates.len(), |i| {
        let started = instrumented.then(std::time::Instant::now);
        let ok = catch_unwind(AssertUnwindSafe(|| {
            octs_fault::maybe_panic_compare(i);
            let _ = tahc.embedding(&candidates[i]);
        }))
        .is_ok();
        if let Some(t0) = started {
            octs_obs::observe("rank.probe_us", t0.elapsed().as_micros() as f64);
        }
        if !ok {
            // Observable mirror only: the authoritative quarantine record is
            // the health vector itself, which flows into
            // `RankOutcome::quarantined` whether or not a recorder is armed.
            octs_obs::event("rank.quarantine", i as f64, &format!("candidate {i}"));
        }
        ok
    })
}

/// Emits the ranking pass's comparator cache activity as counter deltas
/// (hits/misses accrued between `before` and now, for both the embedding and
/// task-pathway caches). No-op when no recorder is attached.
fn record_cache_deltas(tahc: &Tahc, embed_before: CacheStats, task_before: CacheStats) {
    if !octs_obs::armed() {
        return;
    }
    // `saturating_sub`: a cache invalidation (checkpoint restore, training)
    // between the `before` snapshot and now resets the absolute stats, which
    // would underflow — and panic in debug builds — with plain subtraction.
    // A reset window reports a delta of 0 rather than a wrapped count.
    let embed = tahc.embed_cache_stats();
    let task = tahc.task_cache_stats();
    octs_obs::counter("rank.embed_cache.hits", embed.hits.saturating_sub(embed_before.hits) as u64);
    octs_obs::counter(
        "rank.embed_cache.misses",
        embed.misses.saturating_sub(embed_before.misses) as u64,
    );
    octs_obs::counter("rank.task_cache.hits", task.hits.saturating_sub(task_before.hits) as u64);
    octs_obs::counter(
        "rank.task_cache.misses",
        task.misses.saturating_sub(task_before.misses) as u64,
    );
}

/// Judges every `(i, j)` match in parallel; `Some(true)` means `i` won,
/// `None` that the match itself panicked (neither side scores).
fn play_matches(
    tahc: &Tahc,
    prelim: Option<&Tensor>,
    candidates: &[ArchHyper],
    matches: &[(usize, usize)],
) -> Vec<Option<bool>> {
    par_chunked(matches.len(), |m| {
        let (i, j) = matches[m];
        catch_unwind(AssertUnwindSafe(|| tahc.compare(prelim, &candidates[i], &candidates[j]))).ok()
    })
}

/// Tallies wins and assembles the final [`RankOutcome`]: healthy candidates
/// by descending wins (ties by index), quarantined ones appended in index
/// order.
fn assemble_outcome(
    healthy: &[bool],
    matches: &[(usize, usize)],
    outcomes: &[Option<bool>],
) -> RankOutcome {
    let mut wins = vec![0usize; healthy.len()];
    for (&(i, j), outcome) in matches.iter().zip(outcomes) {
        match outcome {
            Some(true) => wins[i] += 1,
            Some(false) => wins[j] += 1,
            None => {}
        }
    }
    let mut order: Vec<usize> = (0..healthy.len()).filter(|&i| healthy[i]).collect();
    order.sort_by(|&a, &b| wins[b].cmp(&wins[a]).then(a.cmp(&b)));
    let quarantined: Vec<usize> = (0..healthy.len()).filter(|&i| !healthy[i]).collect();
    if !quarantined.is_empty() {
        octs_obs::counter("rank.quarantined", quarantined.len() as u64);
    }
    order.extend(&quarantined);
    RankOutcome { order, quarantined }
}

/// Quarantine-aware full Round-Robin: probes every candidate, then plays
/// every healthy-vs-healthy match in parallel. The healthy candidates'
/// relative order is byte-identical to a round-robin over the healthy
/// subpool alone (the schedule restricted to healthy pairs is the same set
/// of matches), so quarantining candidates outside the top-K leaves the
/// top-K unchanged.
pub fn round_robin_rank_checked(
    tahc: &Tahc,
    prelim: Option<&Tensor>,
    candidates: &[ArchHyper],
) -> RankOutcome {
    let _obs = octs_obs::span_detail("rank.round_robin", candidates.len().to_string());
    let embed_before = tahc.embed_cache_stats();
    let task_before = tahc.task_cache_stats();
    let k = candidates.len();
    let healthy = probe_candidates(tahc, candidates);
    let matches: Vec<(usize, usize)> = (0..k)
        .flat_map(|i| (i + 1..k).map(move |j| (i, j)))
        .filter(|&(i, j)| healthy[i] && healthy[j])
        .collect();
    octs_obs::counter("rank.matches", matches.len() as u64);
    let outcomes = play_matches(tahc, prelim, candidates, &matches);
    record_cache_deltas(tahc, embed_before, task_before);
    assemble_outcome(&healthy, &matches, &outcomes)
}

/// Full Round-Robin: each candidate plays every other; returns indices
/// ordered by descending win count (stable on ties). `O(K²)` comparisons,
/// judged in parallel. Panicking candidates are quarantined to the tail; see
/// [`round_robin_rank_checked`] to observe which.
pub fn round_robin_rank(
    tahc: &Tahc,
    prelim: Option<&Tensor>,
    candidates: &[ArchHyper],
) -> Vec<usize> {
    round_robin_rank_checked(tahc, prelim, candidates).order
}

/// Sparse tournament: each candidate plays `rounds` random opponents; cheap
/// pre-ranking used to seed the evolutionary population when the candidate
/// pool is large (the paper's `K_s` reaches 300 000).
///
/// Each candidate's opponents are drawn from its own ChaCha8 stream derived
/// from `seed`, so the schedule — and therefore the ranking — is independent
/// of how the matches are later chunked across threads.
pub fn tournament_rank(
    tahc: &Tahc,
    prelim: Option<&Tensor>,
    candidates: &[ArchHyper],
    rounds: usize,
    seed: u64,
) -> Vec<usize> {
    tournament_rank_checked(tahc, prelim, candidates, rounds, seed).order
}

/// Quarantine-aware sparse tournament (see [`tournament_rank`]). Each
/// candidate's opponent schedule is still drawn from its private RNG stream
/// *before* health filtering, so a quarantine cannot shift any other
/// candidate's schedule; matches touching an unhealthy candidate are simply
/// dropped.
pub fn tournament_rank_checked(
    tahc: &Tahc,
    prelim: Option<&Tensor>,
    candidates: &[ArchHyper],
    rounds: usize,
    seed: u64,
) -> RankOutcome {
    let k = candidates.len();
    if k <= 1 {
        return RankOutcome { order: (0..k).collect(), quarantined: Vec::new() };
    }
    let _obs = octs_obs::span_detail("rank.tournament", k.to_string());
    let embed_before = tahc.embed_cache_stats();
    let task_before = tahc.task_cache_stats();
    let healthy = probe_candidates(tahc, candidates);
    let rounds = rounds.min(k - 1);
    let matches: Vec<(usize, usize)> = (0..k)
        .flat_map(|i| {
            let mut rng = candidate_stream(seed, i);
            let mut opponents: Vec<usize> = Vec::with_capacity(rounds);
            while opponents.len() < rounds {
                let j = rng.gen_range(0..k);
                if j != i && !opponents.contains(&j) {
                    opponents.push(j);
                }
            }
            opponents.into_iter().map(move |j| (i, j)).collect::<Vec<_>>()
        })
        .filter(|&(i, j)| healthy[i] && healthy[j])
        .collect();
    octs_obs::counter("rank.matches", matches.len() as u64);
    let outcomes = play_matches(tahc, prelim, candidates, &matches);
    record_cache_deltas(tahc, embed_before, task_before);
    assemble_outcome(&healthy, &matches, &outcomes)
}

/// Candidate `i`'s private RNG stream: master seed splitmixed with the index
/// so streams are decorrelated but fully determined by `(seed, i)`.
fn candidate_stream(seed: u64, i: usize) -> ChaCha8Rng {
    let salt = (i as u64).wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ChaCha8Rng::seed_from_u64(seed ^ salt)
}

/// Number of comparator invocations a full round-robin over `k` needs.
pub fn round_robin_cost(k: usize) -> usize {
    k * (k - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_comparator::TahcConfig;
    use octs_space::JointSpace;

    fn untrained_fixture(k: usize) -> (Tahc, Vec<ArchHyper>) {
        let space = JointSpace::scaled();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ahs = space.sample_distinct(k, &mut rng);
        let cfg = TahcConfig { task_aware: false, ..TahcConfig::test() };
        (Tahc::new(cfg, space.hyper.clone(), 0), ahs)
    }

    #[test]
    fn round_robin_is_a_permutation() {
        let (tahc, ahs) = untrained_fixture(6);
        let order = round_robin_rank(&tahc, None, &ahs);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn tournament_is_a_permutation_and_cheaper() {
        let (tahc, ahs) = untrained_fixture(10);
        let order = tournament_rank(&tahc, None, &ahs, 2, 7);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert!(round_robin_cost(10) > 10 * 2);
    }

    #[test]
    fn deterministic_rankings() {
        let (tahc, ahs) = untrained_fixture(5);
        let a = round_robin_rank(&tahc, None, &ahs);
        let b = round_robin_rank(&tahc, None, &ahs);
        assert_eq!(a, b);
        let t1 = tournament_rank(&tahc, None, &ahs, 2, 9);
        let t2 = tournament_rank(&tahc, None, &ahs, 2, 9);
        assert_eq!(t1, t2);
    }

    #[test]
    fn tournament_schedule_is_thread_count_independent() {
        // The opponent schedule is a pure function of (seed, candidate), so
        // rankings cannot depend on RAYON_NUM_THREADS.
        let (tahc, ahs) = untrained_fixture(9);
        let baseline = tournament_rank(&tahc, None, &ahs, 3, 11);
        for _ in 0..3 {
            tahc.invalidate_caches();
            assert_eq!(tournament_rank(&tahc, None, &ahs, 3, 11), baseline);
        }
    }

    #[test]
    fn tournament_rounds_capped_by_pool_size() {
        // rounds > k-1 must not loop forever looking for distinct opponents.
        let (tahc, ahs) = untrained_fixture(3);
        let order = tournament_rank(&tahc, None, &ahs, 10, 5);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn assemble_outcome_orders_wins_ties_and_quarantine() {
        // Wins: 0 beats 2 (1 win each for 0, 1 via the two matches); ties
        // keep index order; unhealthy 3 goes to the tail.
        let healthy = [true, true, true, false];
        let matches = [(0, 2), (1, 2), (0, 1)];
        let outcomes = [Some(true), Some(true), None];
        let out = assemble_outcome(&healthy, &matches, &outcomes);
        assert_eq!(out.order, vec![0, 1, 2, 3]);
        assert_eq!(out.quarantined, vec![3]);
    }

    #[test]
    fn chunked_fanout_is_byte_identical_to_serial_above_chunk_size() {
        // A pool large enough that probes (k > RANK_CHUNK) and the match
        // schedule (k * rounds > RANK_CHUNK) both split into multiple chunks
        // must still rank exactly as a serial run.
        let (tahc, ahs) = untrained_fixture(RANK_CHUNK + 9);
        let saved = std::env::var("RAYON_NUM_THREADS").ok();
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = tournament_rank(&tahc, None, &ahs, 3, 13);
        for threads in ["2", "4", "8"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            tahc.invalidate_caches();
            assert_eq!(
                tournament_rank(&tahc, None, &ahs, 3, 13),
                serial,
                "chunked ranking diverged from serial at {threads} threads"
            );
        }
        match saved {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
    }

    #[test]
    fn cache_delta_recording_survives_reset_between_snapshots() {
        // Regression: a cache invalidation between the `before` snapshot and
        // delta computation resets absolute stats below the snapshot, which
        // underflowed (debug-build panic) before `saturating_sub`.
        let (tahc, ahs) = untrained_fixture(4);
        let _ = round_robin_rank(&tahc, None, &ahs); // generate cache traffic
        let embed_before = tahc.embed_cache_stats();
        let task_before = tahc.task_cache_stats();
        assert!(embed_before.hits + embed_before.misses > 0, "fixture must touch the cache");
        tahc.invalidate_caches(); // stats reset: now below the snapshot

        let rec = octs_obs::Recorder::new();
        let scope = octs_obs::ObsScope::activate(&rec);
        record_cache_deltas(&tahc, embed_before, task_before);
        drop(scope);
        let summary = rec.summary();
        assert_eq!(summary.counter("rank.embed_cache.hits"), 0, "reset window must clamp to 0");
        assert_eq!(summary.counter("rank.embed_cache.misses"), 0);
    }

    #[test]
    fn quarantine_is_counted_without_a_recorder_and_mirrored_with_one() {
        // The authoritative quarantine signal must survive a recorder-less
        // run (fault-injection harnesses rely on `RankOutcome` alone); the
        // obs event/counter is only the observable mirror of that record.
        let (tahc, ahs) = untrained_fixture(5);
        let victim = 2usize;
        let _scope = octs_fault::FaultScope::activate(
            octs_fault::FaultPlan::new().compare_panic(victim as u64),
        );

        // No recorder armed: the outcome still carries the quarantine.
        let unarmed = round_robin_rank_checked(&tahc, None, &ahs);
        assert_eq!(unarmed.quarantined, vec![victim], "quarantine lost without a recorder");

        // Recorder armed: same outcome, plus the observable mirror.
        tahc.invalidate_caches();
        let rec = octs_obs::Recorder::new();
        let scope = octs_obs::ObsScope::activate(&rec);
        let armed = round_robin_rank_checked(&tahc, None, &ahs);
        drop(scope);
        assert_eq!(armed.quarantined, unarmed.quarantined);
        let summary = rec.summary();
        assert_eq!(summary.counter("rank.quarantined"), 1);
        assert_eq!(summary.events.get("rank.quarantine"), Some(&1));
    }

    #[test]
    fn compare_panic_quarantines_without_shifting_healthy_order() {
        // Quarantining a candidate must (a) push it to the tail and (b)
        // leave the healthy candidates' relative order exactly as a ranking
        // of the healthy subpool alone would produce it.
        let (tahc, ahs) = untrained_fixture(8);
        let victim = 5usize;
        let baseline: Vec<ArchHyper> =
            ahs.iter().enumerate().filter(|(i, _)| *i != victim).map(|(_, a)| a.clone()).collect();
        let want = round_robin_rank(&tahc, None, &baseline);
        tahc.invalidate_caches();

        let _scope = octs_fault::FaultScope::activate(
            octs_fault::FaultPlan::new().compare_panic(victim as u64),
        );
        let out = round_robin_rank_checked(&tahc, None, &ahs);
        assert_eq!(out.quarantined, vec![victim]);
        assert_eq!(out.order.last(), Some(&victim));
        // map healthy-subpool indices back into full-pool indices
        let remap: Vec<usize> = want.iter().map(|&i| if i >= victim { i + 1 } else { i }).collect();
        assert_eq!(&out.order[..7], &remap[..]);
    }
}
