//! Comparator-based ranking: tournament scoring and Round-Robin top-K.
//!
//! The comparator is a neural network and does not guarantee transitivity,
//! so the paper selects the final top-K by Round-Robin win counting rather
//! than a comparison sort (Section 3.3).

use octs_comparator::Tahc;
use octs_space::ArchHyper;
use octs_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Full Round-Robin: each candidate plays every other; returns indices
/// ordered by descending win count (stable on ties). `O(K²)` comparisons.
pub fn round_robin_rank(
    tahc: &mut Tahc,
    prelim: Option<&Tensor>,
    candidates: &[ArchHyper],
) -> Vec<usize> {
    let k = candidates.len();
    let mut wins = vec![0usize; k];
    for i in 0..k {
        for j in i + 1..k {
            if tahc.compare(prelim, &candidates[i], &candidates[j]) {
                wins[i] += 1;
            } else {
                wins[j] += 1;
            }
        }
    }
    order_by_wins(&wins)
}

/// Sparse tournament: each candidate plays `rounds` random opponents; cheap
/// pre-ranking used to seed the evolutionary population when the candidate
/// pool is large (the paper's `K_s` reaches 300 000).
pub fn tournament_rank(
    tahc: &mut Tahc,
    prelim: Option<&Tensor>,
    candidates: &[ArchHyper],
    rounds: usize,
    seed: u64,
) -> Vec<usize> {
    let k = candidates.len();
    if k <= 1 {
        return (0..k).collect();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut wins = vec![0usize; k];
    let mut opponents: Vec<usize> = (0..k).collect();
    for i in 0..k {
        opponents.shuffle(&mut rng);
        let mut played = 0usize;
        for &j in opponents.iter() {
            if j == i {
                continue;
            }
            if tahc.compare(prelim, &candidates[i], &candidates[j]) {
                wins[i] += 1;
            } else {
                wins[j] += 1;
            }
            played += 1;
            if played >= rounds {
                break;
            }
        }
    }
    order_by_wins(&wins)
}

/// Indices sorted by descending wins (ties keep original order).
fn order_by_wins(wins: &[usize]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..wins.len()).collect();
    idx.sort_by(|&a, &b| wins[b].cmp(&wins[a]).then(a.cmp(&b)));
    idx
}

/// Number of comparator invocations a full round-robin over `k` needs.
pub fn round_robin_cost(k: usize) -> usize {
    k * (k - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_comparator::TahcConfig;
    use octs_space::JointSpace;

    fn untrained_fixture(k: usize) -> (Tahc, Vec<ArchHyper>) {
        let space = JointSpace::scaled();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ahs = space.sample_distinct(k, &mut rng);
        let cfg = TahcConfig { task_aware: false, ..TahcConfig::test() };
        (Tahc::new(cfg, space.hyper.clone(), 0), ahs)
    }

    #[test]
    fn round_robin_is_a_permutation() {
        let (mut tahc, ahs) = untrained_fixture(6);
        let order = round_robin_rank(&mut tahc, None, &ahs);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn tournament_is_a_permutation_and_cheaper() {
        let (mut tahc, ahs) = untrained_fixture(10);
        let order = tournament_rank(&mut tahc, None, &ahs, 2, 7);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert!(round_robin_cost(10) > 10 * 2);
    }

    #[test]
    fn deterministic_rankings() {
        let (mut tahc, ahs) = untrained_fixture(5);
        let a = round_robin_rank(&mut tahc, None, &ahs);
        let b = round_robin_rank(&mut tahc, None, &ahs);
        assert_eq!(a, b);
        let t1 = tournament_rank(&mut tahc, None, &ahs, 2, 9);
        let t2 = tournament_rank(&mut tahc, None, &ahs, 2, 9);
        assert_eq!(t1, t2);
    }

    #[test]
    fn order_by_wins_ties_stable() {
        assert_eq!(order_by_wins(&[2, 3, 2]), vec![1, 0, 2]);
        assert_eq!(order_by_wins(&[1, 1, 1]), vec![0, 1, 2]);
    }
}
