//! Comparator-based ranking: tournament scoring and Round-Robin top-K.
//!
//! The comparator is a neural network and does not guarantee transitivity,
//! so the paper selects the final top-K by Round-Robin win counting rather
//! than a comparison sort (Section 3.3).
//!
//! Both rankers build their full match schedule up front and then judge every
//! match with `rayon` against a shared `&Tahc` (comparator inference is
//! `&self` and memoizes per-candidate GIN embeddings, so a candidate that
//! plays many opponents is encoded once). Outcome collection preserves
//! schedule order and opponent schedules come from per-candidate RNG streams
//! derived from the master seed, so rankings are byte-identical for any
//! thread count.

use octs_comparator::Tahc;
use octs_space::ArchHyper;
use octs_tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Judges every `(i, j)` match in parallel; `true` means `i` won.
fn play_matches(
    tahc: &Tahc,
    prelim: Option<&Tensor>,
    candidates: &[ArchHyper],
    matches: &[(usize, usize)],
) -> Vec<bool> {
    matches.par_iter().map(|&(i, j)| tahc.compare(prelim, &candidates[i], &candidates[j])).collect()
}

/// Full Round-Robin: each candidate plays every other; returns indices
/// ordered by descending win count (stable on ties). `O(K²)` comparisons,
/// judged in parallel.
pub fn round_robin_rank(
    tahc: &Tahc,
    prelim: Option<&Tensor>,
    candidates: &[ArchHyper],
) -> Vec<usize> {
    let k = candidates.len();
    let matches: Vec<(usize, usize)> =
        (0..k).flat_map(|i| (i + 1..k).map(move |j| (i, j))).collect();
    let outcomes = play_matches(tahc, prelim, candidates, &matches);
    let mut wins = vec![0usize; k];
    for (&(i, j), &first_won) in matches.iter().zip(&outcomes) {
        if first_won {
            wins[i] += 1;
        } else {
            wins[j] += 1;
        }
    }
    order_by_wins(&wins)
}

/// Sparse tournament: each candidate plays `rounds` random opponents; cheap
/// pre-ranking used to seed the evolutionary population when the candidate
/// pool is large (the paper's `K_s` reaches 300 000).
///
/// Each candidate's opponents are drawn from its own ChaCha8 stream derived
/// from `seed`, so the schedule — and therefore the ranking — is independent
/// of how the matches are later chunked across threads.
pub fn tournament_rank(
    tahc: &Tahc,
    prelim: Option<&Tensor>,
    candidates: &[ArchHyper],
    rounds: usize,
    seed: u64,
) -> Vec<usize> {
    let k = candidates.len();
    if k <= 1 {
        return (0..k).collect();
    }
    let rounds = rounds.min(k - 1);
    let matches: Vec<(usize, usize)> = (0..k)
        .flat_map(|i| {
            let mut rng = candidate_stream(seed, i);
            let mut opponents: Vec<usize> = Vec::with_capacity(rounds);
            while opponents.len() < rounds {
                let j = rng.gen_range(0..k);
                if j != i && !opponents.contains(&j) {
                    opponents.push(j);
                }
            }
            opponents.into_iter().map(move |j| (i, j)).collect::<Vec<_>>()
        })
        .collect();
    let outcomes = play_matches(tahc, prelim, candidates, &matches);
    let mut wins = vec![0usize; k];
    for (&(i, j), &first_won) in matches.iter().zip(&outcomes) {
        if first_won {
            wins[i] += 1;
        } else {
            wins[j] += 1;
        }
    }
    order_by_wins(&wins)
}

/// Candidate `i`'s private RNG stream: master seed splitmixed with the index
/// so streams are decorrelated but fully determined by `(seed, i)`.
fn candidate_stream(seed: u64, i: usize) -> ChaCha8Rng {
    let salt = (i as u64).wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ChaCha8Rng::seed_from_u64(seed ^ salt)
}

/// Indices sorted by descending wins (ties keep original order).
fn order_by_wins(wins: &[usize]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..wins.len()).collect();
    idx.sort_by(|&a, &b| wins[b].cmp(&wins[a]).then(a.cmp(&b)));
    idx
}

/// Number of comparator invocations a full round-robin over `k` needs.
pub fn round_robin_cost(k: usize) -> usize {
    k * (k - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_comparator::TahcConfig;
    use octs_space::JointSpace;

    fn untrained_fixture(k: usize) -> (Tahc, Vec<ArchHyper>) {
        let space = JointSpace::scaled();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ahs = space.sample_distinct(k, &mut rng);
        let cfg = TahcConfig { task_aware: false, ..TahcConfig::test() };
        (Tahc::new(cfg, space.hyper.clone(), 0), ahs)
    }

    #[test]
    fn round_robin_is_a_permutation() {
        let (tahc, ahs) = untrained_fixture(6);
        let order = round_robin_rank(&tahc, None, &ahs);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn tournament_is_a_permutation_and_cheaper() {
        let (tahc, ahs) = untrained_fixture(10);
        let order = tournament_rank(&tahc, None, &ahs, 2, 7);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert!(round_robin_cost(10) > 10 * 2);
    }

    #[test]
    fn deterministic_rankings() {
        let (tahc, ahs) = untrained_fixture(5);
        let a = round_robin_rank(&tahc, None, &ahs);
        let b = round_robin_rank(&tahc, None, &ahs);
        assert_eq!(a, b);
        let t1 = tournament_rank(&tahc, None, &ahs, 2, 9);
        let t2 = tournament_rank(&tahc, None, &ahs, 2, 9);
        assert_eq!(t1, t2);
    }

    #[test]
    fn tournament_schedule_is_thread_count_independent() {
        // The opponent schedule is a pure function of (seed, candidate), so
        // rankings cannot depend on RAYON_NUM_THREADS.
        let (tahc, ahs) = untrained_fixture(9);
        let baseline = tournament_rank(&tahc, None, &ahs, 3, 11);
        for _ in 0..3 {
            tahc.invalidate_caches();
            assert_eq!(tournament_rank(&tahc, None, &ahs, 3, 11), baseline);
        }
    }

    #[test]
    fn tournament_rounds_capped_by_pool_size() {
        // rounds > k-1 must not loop forever looking for distinct opponents.
        let (tahc, ahs) = untrained_fixture(3);
        let order = tournament_rank(&tahc, None, &ahs, 10, 5);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn order_by_wins_ties_stable() {
        assert_eq!(order_by_wins(&[2, 3, 2]), vec![1, 0, 2]);
        assert_eq!(order_by_wins(&[1, 1, 1]), vec![0, 1, 2]);
    }
}
