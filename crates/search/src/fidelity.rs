//! Multi-fidelity successive-halving labelling for the per-task AutoCTS+
//! pipeline.
//!
//! The plain pipeline (see [`crate::autocts_plus`]) pays full k-epoch proxy
//! training for *every* sampled candidate before the comparator ever sees a
//! pair. AutoTS's two-stage pruning and the multi-fidelity optimization
//! surveyed in Efficient AutoDL both show the same cheaper recipe: evaluate
//! coarse fidelities first and promote only survivors. The ladder here has
//! three rungs:
//!
//! * **stage 0 — screen**: rank the whole candidate pool with
//!   comparator-only inference (no training at all; a pretrained comparator
//!   can be supplied to make the screen informed — the zero-shot reuse);
//! * **stage 1 — proxy**: train the survivors with a 1-epoch (configurable)
//!   early-validation proxy;
//! * **stage 2 — full**: give the finalists the full k-epoch
//!   early-validation labels the plain pipeline gives everyone.
//!
//! The comparator is then trained on the labels the ladder actually paid
//! for — full-fidelity finalist labels plus the proxy labels of pruned
//! stage-1 survivors, paired only *within* a fidelity group because scores
//! from different budgets are not comparable — and the rest of the pipeline
//! (evolutionary ranking, finalist training) is unchanged.
//!
//! Determinism: the pool is canonicalized by fingerprint before anything
//! runs, promotion quotas are fixed numbers applied to canonically-sorted
//! score vectors, and every candidate keeps a private labelling unit id
//! derived from its canonical pool position — so the winner, and every
//! per-stage survivor set, is byte-identical under any `RAYON_NUM_THREADS`
//! and any permutation of the input pool (golden-run + property tests pin
//! both).

use crate::autocts_plus::AutoCtsPlusConfig;
use crate::error::SearchError;
use crate::evolve::evolve_search;
use crate::rank::tournament_rank_checked;
use octs_comparator::{label_one, LabeledAh, Tahc, TahcConfig};
use octs_data::{ForecastTask, Split};
use octs_model::{train_forecaster, Forecaster, ModelDims, TrainConfig, TrainReport};
use octs_space::{ArchHyper, JointSpace};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Fixed promotion quotas and per-stage budgets of the successive-halving
/// ladder. Quotas must shrink monotonically (`pool ≥ stage1 ≥ stage2 ≥ 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LadderConfig {
    /// Stage-0 screening pool size (candidates sampled from the space).
    pub pool: usize,
    /// Survivors promoted out of the comparator-only screen into the cheap
    /// proxy stage.
    pub stage1: usize,
    /// Finalists promoted out of the proxy stage into full-fidelity
    /// labelling.
    pub stage2: usize,
    /// Epochs of the stage-1 cheap proxy (the ladder's low fidelity; the
    /// high fidelity is `AutoCtsPlusConfig::label_cfg.epochs`).
    pub proxy_epochs: usize,
    /// Opponents per candidate in the stage-0 screening tournament.
    pub screen_rounds: usize,
}

impl LadderConfig {
    /// CPU-scaled defaults: screen 32, proxy 8, fully label 3.
    pub fn scaled() -> Self {
        Self { pool: 32, stage1: 8, stage2: 3, proxy_epochs: 1, screen_rounds: 3 }
    }

    /// Tiny defaults for tests.
    pub fn test() -> Self {
        Self { pool: 10, stage1: 5, stage2: 3, proxy_epochs: 1, screen_rounds: 2 }
    }

    /// Validates budgets and quota monotonicity.
    pub fn validate(&self) -> Result<(), SearchError> {
        for (value, what) in [
            (self.pool, "ladder.pool"),
            (self.stage1, "ladder.stage1"),
            (self.stage2, "ladder.stage2"),
            (self.proxy_epochs, "ladder.proxy_epochs"),
            (self.screen_rounds, "ladder.screen_rounds"),
        ] {
            if value == 0 {
                return Err(SearchError::ZeroBudget { what });
            }
        }
        if self.stage1 > self.pool {
            return Err(SearchError::LadderQuotaNotMonotone { what: "stage1 > pool" });
        }
        if self.stage2 > self.stage1 {
            return Err(SearchError::LadderQuotaNotMonotone { what: "stage2 > stage1" });
        }
        Ok(())
    }

    /// Nominal label-training cost of the ladder in training epochs,
    /// assuming no quarantine: `stage1 · proxy_epochs + stage2 · full`.
    pub fn label_epochs(&self, full_epochs: usize) -> usize {
        self.stage1 * self.proxy_epochs + self.stage2 * full_epochs
    }
}

/// What one ladder rung evaluated, promoted, and paid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// `"screen"`, `"proxy"` or `"full"`.
    pub stage: String,
    /// Candidates evaluated at this rung.
    pub evaluated: usize,
    /// Candidates promoted to the next rung (for `"full"`: healthy labelled
    /// finalists).
    pub promoted: usize,
    /// Candidates quarantined at this rung (panicked or diverged).
    pub quarantined: usize,
    /// Label-training epochs paid at this rung (0 for the screen).
    pub train_epochs: usize,
    /// Wall-clock spent on this rung, seconds.
    pub secs: f64,
}

/// Outcome of a fidelity-ladder search, with its per-stage cost breakdown.
#[derive(Debug)]
pub struct LadderOutcome {
    /// The selected arch-hyper.
    pub best: ArchHyper,
    /// Training report of the winner.
    pub best_report: TrainReport,
    /// Per-rung evaluation/promotion/cost reports, in ladder order.
    pub stages: Vec<StageReport>,
    /// Fingerprints of the candidates promoted out of each rung, in
    /// promotion order (deterministic; snapshotted by the golden harness).
    pub survivors: Vec<Vec<u64>>,
    /// Candidates quarantined at any rung.
    pub quarantined: Vec<ArchHyper>,
    /// Healthy stage-1 proxy labels (cheap fidelity).
    pub proxy_labeled: Vec<LabeledAh>,
    /// Healthy stage-2 full-fidelity labels.
    pub full_labeled: Vec<LabeledAh>,
    /// Total label-training epochs actually paid.
    pub label_epochs: usize,
    /// Wall-clock of stages 0–2 (the labelling the ladder makes cheap).
    pub label_time: Duration,
    /// Wall-clock training the comparator on the collected labels.
    pub comparator_time: Duration,
    /// Wall-clock ranking the space + training finalists.
    pub search_time: Duration,
}

/// Deterministic promotion used by every rung that has numeric scores (and
/// by the zero-shot finalist ladder): healthy candidates sorted by `(score
/// bits ascending, fingerprint)` — lower early-validation score is better —
/// and the first `quota` promoted. The sort key is independent of arrival
/// order, so promotion is invariant under pool permutation and thread count.
pub fn promote_by_score<'a>(labeled: &[&'a LabeledAh], quota: usize) -> Vec<&'a LabeledAh> {
    let mut healthy: Vec<&LabeledAh> = labeled.iter().copied().filter(|l| !l.quarantined).collect();
    healthy.sort_by_key(|l| (l.score.to_bits(), l.ah.fingerprint()));
    healthy.truncate(quota);
    healthy
}

/// Trains a fresh non-task-aware comparator over dynamically-paired labelled
/// groups: all ordered pairs with a meaningful score gap are formed *within*
/// each group (scores collected at different fidelities are not comparable
/// across groups), shuffled fresh each epoch on a salted RNG stream.
///
/// With a single group and salt `0xC3A7` this reproduces the plain
/// AutoCTS+ comparator training byte-for-byte — the plain pipeline calls it
/// with exactly those arguments.
pub(crate) fn train_pairwise_comparator(
    space: &JointSpace,
    comparator_cfg: &TahcConfig,
    epochs: usize,
    seed: u64,
    pair_salt: u64,
    groups: &[&[&LabeledAh]],
) -> Tahc {
    let mut pair_rng = ChaCha8Rng::seed_from_u64(seed ^ pair_salt);
    let mut comparator =
        Tahc::new(TahcConfig { task_aware: false, ..*comparator_cfg }, space.hyper.clone(), seed);
    let mut opt = octs_tensor::Adam::new(1e-3, 5e-4);
    let mut pairs: Vec<(&LabeledAh, &LabeledAh)> = groups
        .iter()
        .flat_map(|group| {
            (0..group.len()).flat_map(move |i| (0..group.len()).map(move |j| (group[i], group[j])))
        })
        .filter(|(a, b)| !std::ptr::eq(*a, *b) && (a.score - b.score).abs() > 1e-9)
        .collect();
    for _epoch in 0..epochs {
        pairs.shuffle(&mut pair_rng);
        for chunk in pairs.chunks(16) {
            let batch: Vec<_> = chunk
                .iter()
                .map(|&(a, b)| {
                    let y = if a.score < b.score { 1.0 } else { 0.0 };
                    (None, &a.ah, &b.ah, y)
                })
                .collect();
            comparator.train_batch(&mut opt, &batch);
        }
    }
    comparator
}

/// Trains the ranked finalists and keeps the validation winner. Identical to
/// the plain pipeline's final stage: finalist `i` trains with seed
/// `seed ^ (i + 1)`, and strict `<` keeps the earliest of tied candidates.
pub(crate) fn train_finalists(
    task: &ForecastTask,
    final_cfg: &TrainConfig,
    seed: u64,
    top: Vec<ArchHyper>,
) -> Option<(ArchHyper, TrainReport)> {
    let dims = ModelDims::new(task.data.n(), task.data.f(), task.setting);
    let mut best: Option<(ArchHyper, TrainReport)> = None;
    for (i, ah) in top.into_iter().enumerate() {
        let mut fc = Forecaster::new(ah.clone(), dims, &task.data.adjacency, seed ^ (i as u64 + 1));
        let report = train_forecaster(&mut fc, task, final_cfg);
        let better = match &best {
            Some((_, b)) => report.best_val_mae < b.best_val_mae,
            None => true,
        };
        if better {
            best = Some((ah, report));
        }
    }
    best
}

/// Unit-id offset of stage-2 (full-fidelity) labelling, so fault plans can
/// target a candidate's cheap and full trainings independently: stage 1
/// labels candidate `i` (canonical pool position) as unit `i`, stage 2 as
/// unit `FULL_FIDELITY_UNIT_BASE + i`.
pub const FULL_FIDELITY_UNIT_BASE: u64 = 1 << 20;

/// Runs the successive-halving AutoCTS+ search, sampling `ladder.pool`
/// candidates from the joint space (the `num_labeled` knob of `cfg` is
/// ignored — the ladder's quotas replace it).
pub fn fidelity_ladder_search(
    task: &ForecastTask,
    space: &JointSpace,
    cfg: &AutoCtsPlusConfig,
    ladder: &LadderConfig,
) -> Result<LadderOutcome, SearchError> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let pool = space.sample_distinct(ladder.pool, &mut rng);
    fidelity_ladder_search_with_pool(task, space, cfg, ladder, pool, None)
}

/// [`fidelity_ladder_search`] over an explicit candidate pool, optionally
/// screening with a supplied (typically pretrained, zero-shot) comparator
/// and its preliminary task embedding instead of a fresh seed-initialized
/// one.
pub fn fidelity_ladder_search_with_pool(
    task: &ForecastTask,
    space: &JointSpace,
    cfg: &AutoCtsPlusConfig,
    ladder: &LadderConfig,
    mut pool: Vec<ArchHyper>,
    screener: Option<(&Tahc, Option<&octs_tensor::Tensor>)>,
) -> Result<LadderOutcome, SearchError> {
    ladder.validate()?;
    if cfg.evolve.k_s == 0 {
        return Err(SearchError::ZeroBudget { what: "evolve.k_s" });
    }
    if cfg.evolve.top_k == 0 {
        return Err(SearchError::ZeroBudget { what: "evolve.top_k" });
    }
    if task.windows(Split::Train).is_empty() {
        return Err(SearchError::InsufficientWindows { task: task.id() });
    }
    if pool.is_empty() {
        return Err(SearchError::EmptyCandidatePool);
    }
    // Canonical pool order: every per-candidate RNG stream and labelling
    // unit id attaches to the candidate's position in this fingerprint-sorted
    // order, so permuting the input pool changes nothing downstream.
    pool.sort_by_key(|ah| ah.fingerprint());
    pool.dedup_by_key(|ah| ah.fingerprint());

    let full_epochs = cfg.label_cfg.epochs;
    let mut stages = Vec::with_capacity(3);
    let mut survivors = Vec::with_capacity(3);
    let mut quarantined: Vec<ArchHyper> = Vec::new();
    let label_t0 = Instant::now();

    // --- stage 0: comparator-only screen (no training) --------------------
    let t = Instant::now();
    let obs_screen = octs_obs::span_detail("phase.screen", pool.len().to_string());
    let fresh_screener;
    let (screen_tahc, prelim) = match screener {
        Some((tahc, prelim)) => (tahc, prelim),
        None => {
            fresh_screener = Tahc::new(
                TahcConfig { task_aware: false, ..cfg.comparator },
                space.hyper.clone(),
                cfg.seed ^ 0x5C12,
            );
            (&fresh_screener, None)
        }
    };
    let screen = tournament_rank_checked(
        screen_tahc,
        prelim,
        &pool,
        ladder.screen_rounds,
        cfg.seed ^ 0x5C12,
    );
    let healthy_screened = pool.len() - screen.quarantined.len();
    let stage1_idx: Vec<usize> =
        screen.order.iter().copied().take(ladder.stage1.min(healthy_screened)).collect();
    quarantined.extend(screen.quarantined.iter().map(|&i| pool[i].clone()));
    drop(obs_screen);
    survivors.push(stage1_idx.iter().map(|&i| pool[i].fingerprint()).collect::<Vec<u64>>());
    stages.push(StageReport {
        stage: "screen".to_string(),
        evaluated: pool.len(),
        promoted: stage1_idx.len(),
        quarantined: screen.quarantined.len(),
        train_epochs: 0,
        secs: t.elapsed().as_secs_f64(),
    });
    if stage1_idx.is_empty() {
        return Err(SearchError::AllCandidatesQuarantined);
    }

    // --- stage 1: cheap proxy labels ---------------------------------------
    let t = Instant::now();
    let obs_proxy = octs_obs::span_detail("phase.proxy", stage1_idx.len().to_string());
    let proxy_cfg = TrainConfig { epochs: ladder.proxy_epochs, ..cfg.label_cfg.clone() };
    let proxy_labeled: Vec<LabeledAh> =
        stage1_idx.par_iter().map(|&i| label_one(&pool[i], task, i as u64, &proxy_cfg)).collect();
    quarantined.extend(proxy_labeled.iter().filter(|l| l.quarantined).map(|l| l.ah.clone()));
    let proxy_refs: Vec<&LabeledAh> = proxy_labeled.iter().collect();
    let stage2_promoted = promote_by_score(&proxy_refs, ladder.stage2);
    let proxy_quarantined = proxy_labeled.iter().filter(|l| l.quarantined).count();
    drop(obs_proxy);
    survivors.push(stage2_promoted.iter().map(|l| l.ah.fingerprint()).collect::<Vec<u64>>());
    stages.push(StageReport {
        stage: "proxy".to_string(),
        evaluated: stage1_idx.len(),
        promoted: stage2_promoted.len(),
        quarantined: proxy_quarantined,
        train_epochs: stage1_idx.len() * ladder.proxy_epochs,
        secs: t.elapsed().as_secs_f64(),
    });
    if stage2_promoted.is_empty() {
        return Err(SearchError::AllCandidatesQuarantined);
    }

    // --- stage 2: full-fidelity labels for the finalists -------------------
    let t = Instant::now();
    let obs_full = octs_obs::span_detail("phase.full_label", stage2_promoted.len().to_string());
    // Stable unit ids: recover each finalist's canonical pool position.
    let stage2_units: Vec<(usize, &ArchHyper)> = stage2_promoted
        .iter()
        .map(|l| {
            let fp = l.ah.fingerprint();
            let pos = pool
                .iter()
                .position(|ah| ah.fingerprint() == fp)
                .expect("finalist came from the pool");
            (pos, &l.ah)
        })
        .collect();
    let full_labeled: Vec<LabeledAh> = stage2_units
        .par_iter()
        .map(|&(i, ah)| label_one(ah, task, FULL_FIDELITY_UNIT_BASE + i as u64, &cfg.label_cfg))
        .collect();
    quarantined.extend(full_labeled.iter().filter(|l| l.quarantined).map(|l| l.ah.clone()));
    let full_quarantined = full_labeled.iter().filter(|l| l.quarantined).count();
    let mut full_healthy: Vec<&LabeledAh> =
        full_labeled.iter().filter(|l| !l.quarantined).collect();
    full_healthy.sort_by_key(|l| (l.score.to_bits(), l.ah.fingerprint()));
    drop(obs_full);
    survivors.push(full_healthy.iter().map(|l| l.ah.fingerprint()).collect::<Vec<u64>>());
    stages.push(StageReport {
        stage: "full".to_string(),
        evaluated: stage2_promoted.len(),
        promoted: full_healthy.len(),
        quarantined: full_quarantined,
        train_epochs: stage2_promoted.len() * full_epochs,
        secs: t.elapsed().as_secs_f64(),
    });
    let label_epochs = stage1_idx.len() * ladder.proxy_epochs + stage2_promoted.len() * full_epochs;
    octs_obs::counter("ladder.label_epochs", label_epochs as u64);
    let label_time = label_t0.elapsed();

    // --- comparator training on everything the ladder paid for -------------
    // Group 0: full-fidelity finalist labels. Group 1: proxy labels of the
    // stage-1 survivors that were *not* promoted (their cheap signal is
    // still real ordering information). Pairs never cross groups.
    let promoted_fps: Vec<u64> = stage2_promoted.iter().map(|l| l.ah.fingerprint()).collect();
    let mut proxy_rest: Vec<&LabeledAh> = proxy_labeled
        .iter()
        .filter(|l| !l.quarantined && !promoted_fps.contains(&l.ah.fingerprint()))
        .collect();
    proxy_rest.sort_by_key(|l| (l.score.to_bits(), l.ah.fingerprint()));
    if full_healthy.is_empty() && proxy_rest.is_empty() {
        return Err(SearchError::AllCandidatesQuarantined);
    }
    let t1 = Instant::now();
    let obs_pretrain = octs_obs::span_detail("phase.pretrain", cfg.comparator_epochs.to_string());
    let comparator = train_pairwise_comparator(
        space,
        &cfg.comparator,
        cfg.comparator_epochs,
        cfg.seed,
        0xF1DE,
        &[&full_healthy, &proxy_rest],
    );
    drop(obs_pretrain);
    let comparator_time = t1.elapsed();

    // --- rank the joint space and train the top-K --------------------------
    let t2 = Instant::now();
    let obs_rank = octs_obs::span_detail("phase.rank", cfg.evolve.k_s.to_string());
    let top = evolve_search(&comparator, None, space, &cfg.evolve);
    drop(obs_rank);
    let obs_final = octs_obs::span_detail("phase.final_train", top.len().to_string());
    let best = train_finalists(task, &cfg.final_cfg, cfg.seed, top);
    drop(obs_final);
    let search_time = t2.elapsed();
    let (best, best_report) = best.expect("top_k >= 1");

    let proxy_labeled = proxy_labeled.into_iter().filter(|l| !l.quarantined).collect();
    let full_labeled = full_labeled.into_iter().filter(|l| !l.quarantined).collect();
    Ok(LadderOutcome {
        best,
        best_report,
        stages,
        survivors,
        quarantined,
        proxy_labeled,
        full_labeled,
        label_epochs,
        label_time,
        comparator_time,
        search_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_data::{DatasetProfile, Domain, ForecastSetting};

    fn task() -> ForecastTask {
        let p = DatasetProfile::custom("ladder", Domain::Traffic, 4, 220, 24, 0.3, 0.1, 10.0, 23);
        ForecastTask::new(p.generate(0), ForecastSetting::multi(4, 2), 0.6, 0.2, 2)
    }

    #[test]
    fn ladder_end_to_end_and_cost_accounting() {
        let t = task();
        let cfg = AutoCtsPlusConfig::test();
        let ladder = LadderConfig::test();
        let out = fidelity_ladder_search(&t, &JointSpace::tiny(), &cfg, &ladder).unwrap();
        assert!(out.best_report.best_val_mae.is_finite());
        assert_eq!(out.stages.len(), 3);
        assert_eq!(out.survivors.len(), 3);
        assert!(out.quarantined.is_empty());
        // Quotas applied exactly on a healthy run.
        assert_eq!(out.stages[0].evaluated, ladder.pool);
        assert_eq!(out.stages[0].promoted, ladder.stage1);
        assert_eq!(out.stages[1].promoted, ladder.stage2);
        assert_eq!(out.stages[0].train_epochs, 0, "the screen must not train anything");
        assert_eq!(
            out.label_epochs,
            ladder.label_epochs(cfg.label_cfg.epochs),
            "paid epochs must match the nominal quota cost on a healthy run"
        );
        // The ladder must be cheaper than full fidelity for everyone.
        assert!(out.label_epochs < ladder.pool * cfg.label_cfg.epochs);
        assert_eq!(out.proxy_labeled.len(), ladder.stage1);
        assert_eq!(out.full_labeled.len(), ladder.stage2);
    }

    #[test]
    fn ladder_is_deterministic_given_seed() {
        let t = task();
        let cfg = AutoCtsPlusConfig::test();
        let ladder = LadderConfig::test();
        let a = fidelity_ladder_search(&t, &JointSpace::tiny(), &cfg, &ladder).unwrap();
        let b = fidelity_ladder_search(&t, &JointSpace::tiny(), &cfg, &ladder).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.survivors, b.survivors);
        assert_eq!(
            a.best_report.best_val_mae.to_bits(),
            b.best_report.best_val_mae.to_bits(),
            "winner training must be byte-identical"
        );
    }

    #[test]
    fn ladder_is_invariant_under_pool_permutation() {
        let t = task();
        let space = JointSpace::tiny();
        let cfg = AutoCtsPlusConfig::test();
        let ladder = LadderConfig::test();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let pool = space.sample_distinct(ladder.pool, &mut rng);
        let reference =
            fidelity_ladder_search_with_pool(&t, &space, &cfg, &ladder, pool.clone(), None)
                .unwrap();
        let mut reversed = pool.clone();
        reversed.reverse();
        let permuted =
            fidelity_ladder_search_with_pool(&t, &space, &cfg, &ladder, reversed, None).unwrap();
        assert_eq!(permuted.best, reference.best);
        assert_eq!(permuted.survivors, reference.survivors);
    }

    #[test]
    fn ladder_quota_validation() {
        let bad = LadderConfig { stage1: 11, pool: 10, ..LadderConfig::test() };
        assert_eq!(
            bad.validate().unwrap_err(),
            SearchError::LadderQuotaNotMonotone { what: "stage1 > pool" }
        );
        let bad = LadderConfig { stage2: 6, stage1: 5, ..LadderConfig::test() };
        assert_eq!(
            bad.validate().unwrap_err(),
            SearchError::LadderQuotaNotMonotone { what: "stage2 > stage1" }
        );
        let bad = LadderConfig { proxy_epochs: 0, ..LadderConfig::test() };
        assert_eq!(
            bad.validate().unwrap_err(),
            SearchError::ZeroBudget { what: "ladder.proxy_epochs" }
        );
        let t = task();
        assert_eq!(
            fidelity_ladder_search_with_pool(
                &t,
                &JointSpace::tiny(),
                &AutoCtsPlusConfig::test(),
                &LadderConfig::test(),
                Vec::new(),
                None,
            )
            .unwrap_err(),
            SearchError::EmptyCandidatePool
        );
    }

    #[test]
    fn quarantined_proxy_candidate_never_promoted() {
        // Inject a NaN divergence into stage-1 unit 0 (the candidate at
        // canonical pool position 0, if screened in): whatever candidate that
        // is must be quarantined and absent from every later survivor set.
        let t = task();
        let space = JointSpace::tiny();
        let cfg = AutoCtsPlusConfig::test();
        let ladder = LadderConfig { stage1: 10, ..LadderConfig::test() };

        let reference = fidelity_ladder_search(&t, &space, &cfg, &ladder).unwrap();
        assert!(reference.quarantined.is_empty());
        let victim_fp = reference.survivors[0][0]; // promoted by the screen
                                                   // Find the victim's canonical pool position = its stage-1 unit id.
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut pool = space.sample_distinct(ladder.pool, &mut rng);
        pool.sort_by_key(|ah| ah.fingerprint());
        let victim_unit = pool.iter().position(|ah| ah.fingerprint() == victim_fp).unwrap() as u64;

        let _scope =
            octs_fault::FaultScope::activate(octs_fault::FaultPlan::new().nan_loss(victim_unit, 0));
        let faulted = fidelity_ladder_search(&t, &space, &cfg, &ladder).unwrap();
        assert_eq!(
            faulted.quarantined.iter().map(|ah| ah.fingerprint()).collect::<Vec<_>>(),
            vec![victim_fp]
        );
        assert!(
            !faulted.survivors[1].contains(&victim_fp),
            "a quarantined proxy candidate must not be promoted to full fidelity"
        );
        assert!(!faulted.survivors[2].contains(&victim_fp));
    }

    #[test]
    fn promote_by_score_sorts_and_filters() {
        let space = JointSpace::tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ahs = space.sample_distinct(4, &mut rng);
        let labeled: Vec<LabeledAh> = ahs
            .iter()
            .enumerate()
            .map(|(i, ah)| LabeledAh {
                ah: ah.clone(),
                score: [0.7f32, 0.2, f32::INFINITY, 0.4][i],
                quarantined: i == 2,
            })
            .collect();
        let refs: Vec<&LabeledAh> = labeled.iter().collect();
        let promoted = promote_by_score(&refs, 2);
        assert_eq!(promoted.len(), 2);
        assert_eq!(promoted[0].score, 0.2);
        assert_eq!(promoted[1].score, 0.4);
    }
}
