//! The original **AutoCTS+** (SIGMOD 2023) per-task search: train a plain
//! (non-task-aware) Architecture-Hyperparameter Comparator *for one target
//! task* from early-validation labels collected on that task, then use it to
//! rank the joint space and train the top-K finalists.
//!
//! This is the fully-supervised predecessor of the zero-shot pipeline: it
//! needs no pre-training corpus, but pays the label-collection cost again
//! for every new task — the cost AutoCTS++ amortizes away (compare
//! [`crate::zeroshot::zero_shot_search`]).

use crate::evolve::{evolve_search, EvolveConfig};
use octs_comparator::{Tahc, TahcConfig};
use octs_data::ForecastTask;
use octs_model::{
    early_validation, train_forecaster, Forecaster, ModelDims, TrainConfig, TrainReport,
};
use octs_space::{ArchHyper, JointSpace};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// Configuration of the per-task AutoCTS+ search.
#[derive(Debug, Clone)]
pub struct AutoCtsPlusConfig {
    /// Number of arch-hypers labelled with the early-validation proxy
    /// (the paper's `(ah, R'(ah))` sample budget).
    pub num_labeled: usize,
    /// Early-validation (k-epoch) training configuration.
    pub label_cfg: TrainConfig,
    /// Comparator architecture (forced non-task-aware).
    pub comparator: TahcConfig,
    /// Comparator training epochs over the dynamically-paired samples.
    pub comparator_epochs: usize,
    /// Evolutionary-search settings for the ranking stage.
    pub evolve: EvolveConfig,
    /// Final training of the top-K candidates.
    pub final_cfg: TrainConfig,
    /// Seed.
    pub seed: u64,
}

impl AutoCtsPlusConfig {
    /// CPU-scaled defaults.
    pub fn scaled() -> Self {
        Self {
            num_labeled: 16,
            label_cfg: TrainConfig::early_validation(),
            comparator: TahcConfig { task_aware: false, ..TahcConfig::scaled() },
            comparator_epochs: 40,
            evolve: EvolveConfig::scaled(),
            final_cfg: TrainConfig::standard(),
            seed: 0,
        }
    }

    /// Tiny defaults for tests.
    pub fn test() -> Self {
        Self {
            num_labeled: 6,
            label_cfg: TrainConfig::test(),
            comparator: TahcConfig { task_aware: false, ..TahcConfig::test() },
            comparator_epochs: 10,
            evolve: EvolveConfig::test(),
            final_cfg: TrainConfig::test(),
            seed: 0,
        }
    }
}

/// Outcome of an AutoCTS+ search, with its cost breakdown.
pub struct AutoCtsPlusOutcome {
    /// The selected arch-hyper.
    pub best: ArchHyper,
    /// Training report of the winner.
    pub best_report: TrainReport,
    /// Wall-clock spent collecting `(ah, R')` labels — the per-task cost
    /// zero-shot search eliminates.
    pub label_time: Duration,
    /// Wall-clock spent training the comparator.
    pub comparator_time: Duration,
    /// Wall-clock spent ranking + training finalists.
    pub search_time: Duration,
}

/// Runs the AutoCTS+ pipeline on a single task.
pub fn autocts_plus_search(
    task: &ForecastTask,
    space: &JointSpace,
    cfg: &AutoCtsPlusConfig,
) -> AutoCtsPlusOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // 1. Collect (ah, R'(ah)) samples on THIS task (Eq. 22).
    let t0 = Instant::now();
    let candidates = space.sample_distinct(cfg.num_labeled, &mut rng);
    let labeled: Vec<(ArchHyper, f32)> = candidates
        .into_iter()
        .map(|ah| {
            let score = early_validation(&ah, task, &cfg.label_cfg);
            (ah, score)
        })
        .collect();
    let label_time = t0.elapsed();

    // 2. Train the plain AHC with dynamic pairing: a(a-1) ordered pairs from
    //    `a` labelled samples, shuffled fresh each epoch.
    let t1 = Instant::now();
    let mut comparator = Tahc::new(
        TahcConfig { task_aware: false, ..cfg.comparator },
        space.hyper.clone(),
        cfg.seed,
    );
    let mut opt = octs_tensor::Adam::new(1e-3, 5e-4);
    let mut pair_idx: Vec<(usize, usize)> = (0..labeled.len())
        .flat_map(|i| (0..labeled.len()).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j && (labeled[i].1 - labeled[j].1).abs() > 1e-9)
        .collect();
    for _epoch in 0..cfg.comparator_epochs {
        pair_idx.shuffle(&mut rng);
        for chunk in pair_idx.chunks(16) {
            let batch: Vec<_> = chunk
                .iter()
                .map(|&(i, j)| {
                    let y = if labeled[i].1 < labeled[j].1 { 1.0 } else { 0.0 };
                    (None, &labeled[i].0, &labeled[j].0, y)
                })
                .collect();
            comparator.train_batch(&mut opt, &batch);
        }
    }
    let comparator_time = t1.elapsed();

    // 3. Rank the joint space with the trained comparator and train top-K.
    let t2 = Instant::now();
    let top = evolve_search(&comparator, None, space, &cfg.evolve);
    let dims = ModelDims::new(task.data.n(), task.data.f(), task.setting);
    let mut best: Option<(ArchHyper, TrainReport)> = None;
    for (i, ah) in top.into_iter().enumerate() {
        let mut fc =
            Forecaster::new(ah.clone(), dims, &task.data.adjacency, cfg.seed ^ (i as u64 + 1));
        let report = train_forecaster(&mut fc, task, &cfg.final_cfg);
        let better = match &best {
            Some((_, b)) => report.best_val_mae < b.best_val_mae,
            None => true,
        };
        if better {
            best = Some((ah, report));
        }
    }
    let search_time = t2.elapsed();
    let (best, best_report) = best.expect("top_k >= 1");
    AutoCtsPlusOutcome { best, best_report, label_time, comparator_time, search_time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_data::{DatasetProfile, Domain, ForecastSetting};

    fn task() -> ForecastTask {
        let p = DatasetProfile::custom("acp", Domain::Traffic, 4, 220, 24, 0.3, 0.1, 10.0, 23);
        ForecastTask::new(p.generate(0), ForecastSetting::multi(4, 2), 0.6, 0.2, 2)
    }

    #[test]
    fn end_to_end_per_task_search() {
        let t = task();
        let cfg = AutoCtsPlusConfig::test();
        let out = autocts_plus_search(&t, &JointSpace::tiny(), &cfg);
        assert!(out.best_report.best_val_mae.is_finite());
        assert_eq!(out.best.arch.c(), out.best.hyper.c);
        assert!(out.label_time > Duration::ZERO);
        assert!(out.search_time > Duration::ZERO);
    }

    #[test]
    fn label_cost_dominates_for_larger_budgets() {
        // The structural claim behind zero-shot search: per-task labelling is
        // the expensive phase and scales with the sample budget.
        let t = task();
        let small = AutoCtsPlusConfig { num_labeled: 3, ..AutoCtsPlusConfig::test() };
        let large = AutoCtsPlusConfig { num_labeled: 9, ..AutoCtsPlusConfig::test() };
        let o1 = autocts_plus_search(&t, &JointSpace::tiny(), &small);
        let o2 = autocts_plus_search(&t, &JointSpace::tiny(), &large);
        assert!(
            o2.label_time > o1.label_time,
            "labelling 9 candidates must cost more than 3 ({:?} vs {:?})",
            o2.label_time,
            o1.label_time
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let t = task();
        let cfg = AutoCtsPlusConfig::test();
        let a = autocts_plus_search(&t, &JointSpace::tiny(), &cfg);
        let b = autocts_plus_search(&t, &JointSpace::tiny(), &cfg);
        assert_eq!(a.best, b.best);
    }
}
