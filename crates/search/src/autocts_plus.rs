//! The original **AutoCTS+** (SIGMOD 2023) per-task search: train a plain
//! (non-task-aware) Architecture-Hyperparameter Comparator *for one target
//! task* from early-validation labels collected on that task, then use it to
//! rank the joint space and train the top-K finalists.
//!
//! This is the fully-supervised predecessor of the zero-shot pipeline: it
//! needs no pre-training corpus, but pays the label-collection cost again
//! for every new task — the cost AutoCTS++ amortizes away (compare
//! [`crate::zeroshot::zero_shot_search`]).

use crate::error::SearchError;
use crate::evolve::{evolve_search, EvolveConfig};
use crate::fidelity::{train_finalists, train_pairwise_comparator};
use octs_comparator::{label_one, LabeledAh, TahcConfig};
use octs_data::{ForecastTask, Split};
use octs_model::{TrainConfig, TrainReport};
use octs_space::{ArchHyper, JointSpace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Configuration of the per-task AutoCTS+ search.
#[derive(Debug, Clone)]
pub struct AutoCtsPlusConfig {
    /// Number of arch-hypers labelled with the early-validation proxy
    /// (the paper's `(ah, R'(ah))` sample budget).
    pub num_labeled: usize,
    /// Early-validation (k-epoch) training configuration.
    pub label_cfg: TrainConfig,
    /// Comparator architecture (forced non-task-aware).
    pub comparator: TahcConfig,
    /// Comparator training epochs over the dynamically-paired samples.
    pub comparator_epochs: usize,
    /// Evolutionary-search settings for the ranking stage.
    pub evolve: EvolveConfig,
    /// Final training of the top-K candidates.
    pub final_cfg: TrainConfig,
    /// Seed.
    pub seed: u64,
}

impl AutoCtsPlusConfig {
    /// CPU-scaled defaults.
    pub fn scaled() -> Self {
        Self {
            num_labeled: 16,
            label_cfg: TrainConfig::early_validation(),
            comparator: TahcConfig { task_aware: false, ..TahcConfig::scaled() },
            comparator_epochs: 40,
            evolve: EvolveConfig::scaled(),
            final_cfg: TrainConfig::standard(),
            seed: 0,
        }
    }

    /// Tiny defaults for tests.
    pub fn test() -> Self {
        Self {
            num_labeled: 6,
            label_cfg: TrainConfig::test(),
            comparator: TahcConfig { task_aware: false, ..TahcConfig::test() },
            comparator_epochs: 10,
            evolve: EvolveConfig::test(),
            final_cfg: TrainConfig::test(),
            seed: 0,
        }
    }
}

/// Outcome of an AutoCTS+ search, with its cost breakdown.
#[derive(Debug)]
pub struct AutoCtsPlusOutcome {
    /// The selected arch-hyper.
    pub best: ArchHyper,
    /// Training report of the winner.
    pub best_report: TrainReport,
    /// Labelled candidates that diverged or panicked and were excluded from
    /// comparator training (empty on a healthy run).
    pub quarantined: Vec<ArchHyper>,
    /// Wall-clock spent collecting `(ah, R')` labels — the per-task cost
    /// zero-shot search eliminates.
    pub label_time: Duration,
    /// Wall-clock spent training the comparator.
    pub comparator_time: Duration,
    /// Wall-clock spent ranking + training finalists.
    pub search_time: Duration,
}

fn validate(task: &ForecastTask, cfg: &AutoCtsPlusConfig) -> Result<(), SearchError> {
    if cfg.num_labeled == 0 {
        return Err(SearchError::ZeroBudget { what: "num_labeled" });
    }
    if cfg.evolve.k_s == 0 {
        return Err(SearchError::ZeroBudget { what: "evolve.k_s" });
    }
    if cfg.evolve.top_k == 0 {
        return Err(SearchError::ZeroBudget { what: "evolve.top_k" });
    }
    if task.windows(Split::Train).is_empty() {
        return Err(SearchError::InsufficientWindows { task: task.id() });
    }
    Ok(())
}

/// Runs the AutoCTS+ pipeline on a single task, sampling `cfg.num_labeled`
/// candidates from the joint space. Degenerate inputs (zero budgets, a
/// windowless task, an all-quarantined pool) come back as typed
/// [`SearchError`]s instead of panics.
pub fn autocts_plus_search(
    task: &ForecastTask,
    space: &JointSpace,
    cfg: &AutoCtsPlusConfig,
) -> Result<AutoCtsPlusOutcome, SearchError> {
    validate(task, cfg)?;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let candidates = space.sample_distinct(cfg.num_labeled, &mut rng);
    autocts_plus_search_with_pool(task, space, cfg, candidates)
}

/// Runs the AutoCTS+ pipeline over an explicit candidate pool.
///
/// Every stage downstream of labelling consumes only the *healthy* labelled
/// candidates — in a canonical order independent of how the pool was
/// arranged — and all RNG streams are derived from fixed salts rather than
/// threaded through the pool. Two consequences, both enforced by tests: a
/// run where faulty candidates get quarantined produces byte-identical
/// comparator parameters (and therefore an identical winner) to a run handed
/// the healthy subset directly, and permuting the pool (or changing
/// `RAYON_NUM_THREADS`) leaves the winner byte-identical too.
pub fn autocts_plus_search_with_pool(
    task: &ForecastTask,
    space: &JointSpace,
    cfg: &AutoCtsPlusConfig,
    pool: Vec<ArchHyper>,
) -> Result<AutoCtsPlusOutcome, SearchError> {
    validate(task, cfg)?;
    if pool.is_empty() {
        return Err(SearchError::EmptyCandidatePool);
    }

    // 1. Collect (ah, R'(ah)) samples on THIS task (Eq. 22), in parallel,
    //    each candidate isolated: a panic or divergence quarantines that
    //    candidate only.
    let t0 = Instant::now();
    let obs_label = octs_obs::span_detail("phase.label", pool.len().to_string());
    let idx: Vec<usize> = (0..pool.len()).collect();
    let labeled: Vec<LabeledAh> =
        idx.par_iter().map(|&i| label_one(&pool[i], task, i as u64, &cfg.label_cfg)).collect();
    let quarantined: Vec<ArchHyper> =
        labeled.iter().filter(|l| l.quarantined).map(|l| l.ah.clone()).collect();
    // Canonical ordering: every stage downstream consumes the healthy
    // candidates sorted by (score bits, fingerprint) — a key independent of
    // the pool's arrival order — so permuting the candidate pool leaves the
    // comparator's training pair stream, and therefore the winner,
    // byte-identical (the testkit property suite enforces this).
    let mut healthy: Vec<&LabeledAh> = labeled.iter().filter(|l| !l.quarantined).collect();
    healthy.sort_by_key(|l| (l.score.to_bits(), l.ah.fingerprint()));
    octs_obs::counter("search.pool", pool.len() as u64);
    octs_obs::counter("search.quarantined", quarantined.len() as u64);
    drop(obs_label);
    if healthy.is_empty() {
        return Err(SearchError::AllCandidatesQuarantined);
    }
    let label_time = t0.elapsed();

    // 2. Train the plain AHC with dynamic pairing: a(a-1) ordered pairs from
    //    the `a` healthy labelled samples, shuffled fresh each epoch. The
    //    shuffle RNG is its own salted stream, so its draws do not depend on
    //    how many candidates the sampling stage consumed. (Shared with the
    //    fidelity ladder, which passes several fidelity groups; a single
    //    group reproduces the historical pair stream byte-for-byte.)
    let t1 = Instant::now();
    let obs_pretrain = octs_obs::span_detail("phase.pretrain", cfg.comparator_epochs.to_string());
    let comparator = train_pairwise_comparator(
        space,
        &cfg.comparator,
        cfg.comparator_epochs,
        cfg.seed,
        0xC3A7,
        &[&healthy],
    );
    drop(obs_pretrain);
    let comparator_time = t1.elapsed();

    // 3. Rank the joint space with the trained comparator and train top-K.
    let t2 = Instant::now();
    let obs_rank = octs_obs::span_detail("phase.rank", cfg.evolve.k_s.to_string());
    let top = evolve_search(&comparator, None, space, &cfg.evolve);
    drop(obs_rank);
    let obs_final = octs_obs::span_detail("phase.final_train", top.len().to_string());
    let best = train_finalists(task, &cfg.final_cfg, cfg.seed, top);
    drop(obs_final);
    let search_time = t2.elapsed();
    let (best, best_report) = best.expect("top_k >= 1");
    Ok(AutoCtsPlusOutcome {
        best,
        best_report,
        quarantined,
        label_time,
        comparator_time,
        search_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_data::{DatasetProfile, Domain, ForecastSetting};

    fn task() -> ForecastTask {
        let p = DatasetProfile::custom("acp", Domain::Traffic, 4, 220, 24, 0.3, 0.1, 10.0, 23);
        ForecastTask::new(p.generate(0), ForecastSetting::multi(4, 2), 0.6, 0.2, 2)
    }

    #[test]
    fn end_to_end_per_task_search() {
        let t = task();
        let cfg = AutoCtsPlusConfig::test();
        let out = autocts_plus_search(&t, &JointSpace::tiny(), &cfg).unwrap();
        assert!(out.best_report.best_val_mae.is_finite());
        assert_eq!(out.best.arch.c(), out.best.hyper.c);
        assert!(out.quarantined.is_empty());
        assert!(out.label_time > Duration::ZERO);
        assert!(out.search_time > Duration::ZERO);
    }

    #[test]
    fn label_cost_dominates_for_larger_budgets() {
        // The structural claim behind zero-shot search: per-task labelling is
        // the expensive phase and scales with the sample budget.
        let t = task();
        let small = AutoCtsPlusConfig { num_labeled: 3, ..AutoCtsPlusConfig::test() };
        let large = AutoCtsPlusConfig { num_labeled: 9, ..AutoCtsPlusConfig::test() };
        let o1 = autocts_plus_search(&t, &JointSpace::tiny(), &small).unwrap();
        let o2 = autocts_plus_search(&t, &JointSpace::tiny(), &large).unwrap();
        assert!(
            o2.label_time > o1.label_time,
            "labelling 9 candidates must cost more than 3 ({:?} vs {:?})",
            o2.label_time,
            o1.label_time
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let t = task();
        let cfg = AutoCtsPlusConfig::test();
        let a = autocts_plus_search(&t, &JointSpace::tiny(), &cfg).unwrap();
        let b = autocts_plus_search(&t, &JointSpace::tiny(), &cfg).unwrap();
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn degenerate_inputs_return_typed_errors() {
        let t = task();
        let space = JointSpace::tiny();
        let zero_labels = AutoCtsPlusConfig { num_labeled: 0, ..AutoCtsPlusConfig::test() };
        assert_eq!(
            autocts_plus_search(&t, &space, &zero_labels).unwrap_err(),
            SearchError::ZeroBudget { what: "num_labeled" }
        );
        let mut zero_top = AutoCtsPlusConfig::test();
        zero_top.evolve.top_k = 0;
        assert_eq!(
            autocts_plus_search(&t, &space, &zero_top).unwrap_err(),
            SearchError::ZeroBudget { what: "evolve.top_k" }
        );
        let mut zero_ks = AutoCtsPlusConfig::test();
        zero_ks.evolve.k_s = 0;
        assert_eq!(
            autocts_plus_search(&t, &space, &zero_ks).unwrap_err(),
            SearchError::ZeroBudget { what: "evolve.k_s" }
        );
        assert_eq!(
            autocts_plus_search_with_pool(&t, &space, &AutoCtsPlusConfig::test(), Vec::new())
                .unwrap_err(),
            SearchError::EmptyCandidatePool
        );
        // A split carved so thin it holds no full window must be rejected
        // up front, not panic inside the trainer.
        let p = DatasetProfile::custom("thin", Domain::Traffic, 4, 220, 24, 0.3, 0.1, 10.0, 23);
        let thin = ForecastTask::new(p.generate(0), ForecastSetting::multi(4, 2), 0.01, 0.9, 2);
        assert!(matches!(
            autocts_plus_search(&thin, &space, &AutoCtsPlusConfig::test()),
            Err(SearchError::InsufficientWindows { .. })
        ));
    }

    #[test]
    fn quarantine_leaves_winner_identical_to_healthy_pool_run() {
        // The acceptance property: with one NaN-diverging and one panicking
        // candidate in the pool, the search must complete, quarantine
        // exactly those two, and select the byte-identical winner a run
        // given only the healthy candidates selects.
        let t = task();
        let space = JointSpace::tiny();
        let cfg = AutoCtsPlusConfig::test();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let pool = space.sample_distinct(6, &mut rng);
        let healthy_pool: Vec<ArchHyper> = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1 && *i != 3)
            .map(|(_, ah)| ah.clone())
            .collect();

        let reference = autocts_plus_search_with_pool(&t, &space, &cfg, healthy_pool).unwrap();

        let _scope = octs_fault::FaultScope::activate(
            octs_fault::FaultPlan::new().nan_loss(1, 0).panic_unit(3),
        );
        let faulted = autocts_plus_search_with_pool(&t, &space, &cfg, pool.clone()).unwrap();

        assert_eq!(faulted.quarantined, vec![pool[1].clone(), pool[3].clone()]);
        assert_eq!(faulted.best, reference.best);
        assert_eq!(
            faulted.best_report.best_val_mae.to_bits(),
            reference.best_report.best_val_mae.to_bits(),
            "winner's training must be byte-identical"
        );
        assert!(reference.quarantined.is_empty());
    }

    #[test]
    fn recorder_on_run_matches_recorder_off_run_exactly() {
        // Observability must be purely observational: attaching a recorder
        // cannot perturb RNG streams, ranking order, or training, so the
        // winner (and its val MAE, bit for bit) must match a recorder-off
        // run. Meanwhile the trace itself must cover the pipeline phases.
        let t = task();
        let space = JointSpace::tiny();
        let cfg = AutoCtsPlusConfig::test();

        let plain = autocts_plus_search(&t, &space, &cfg).unwrap();

        let rec = octs_obs::Recorder::new();
        let scope = octs_obs::ObsScope::activate(&rec);
        let traced = autocts_plus_search(&t, &space, &cfg).unwrap();
        drop(scope);

        assert_eq!(traced.best, plain.best, "recorder must not change the winner");
        assert_eq!(
            traced.best_report.best_val_mae.to_bits(),
            plain.best_report.best_val_mae.to_bits(),
            "recorder must not perturb training"
        );

        let summary = rec.summary();
        for span in ["phase.label", "phase.pretrain", "phase.rank", "phase.final_train"] {
            assert!(summary.span_total_us(span) > 0, "missing span {span}");
        }
        assert_eq!(summary.counter("search.pool"), cfg.num_labeled as u64);
        assert_eq!(summary.counter("search.quarantined"), 0);
        assert!(summary.counter("rank.matches") > 0, "ranking must record matches");
        let cache_lookups =
            summary.counter("rank.embed_cache.hits") + summary.counter("rank.embed_cache.misses");
        assert!(cache_lookups > 0, "ranking must record embedding-cache traffic");
        // NDJSON round-trips through the parser.
        let lines = octs_obs::parse_ndjson(&rec.ndjson()).unwrap();
        assert!(!lines.is_empty());
    }

    #[test]
    fn all_quarantined_pool_is_a_typed_error() {
        let t = task();
        let space = JointSpace::tiny();
        let cfg = AutoCtsPlusConfig::test();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let pool = space.sample_distinct(2, &mut rng);
        let _scope = octs_fault::FaultScope::activate(
            octs_fault::FaultPlan::new().panic_unit(0).panic_unit(1),
        );
        assert_eq!(
            autocts_plus_search_with_pool(&t, &space, &cfg, pool).unwrap_err(),
            SearchError::AllCandidatesQuarantined
        );
    }
}
