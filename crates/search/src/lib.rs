//! # octs-search
//!
//! Search strategies over the joint arch-hyper space: the comparator-guided
//! zero-shot search of AutoCTS++ (Algorithm 2: tournament seeding →
//! evolutionary refinement → Round-Robin top-K → train finalists), plus the
//! baseline strategies it is evaluated against — random search, grid-search
//! HPO and a DARTS-style weight-sharing supernet standing in for the
//! fully-supervised AutoCTS/AutoSTG frameworks.

#![warn(missing_docs)]

pub mod autocts_plus;
pub mod baseline_search;
pub mod error;
pub mod evolve;
pub mod fidelity;
pub mod rank;
pub mod zeroshot;

pub use autocts_plus::{
    autocts_plus_search, autocts_plus_search_with_pool, AutoCtsPlusConfig, AutoCtsPlusOutcome,
};
pub use baseline_search::{grid_search_hpo, random_search, supernet_search, SupernetConfig};
pub use error::SearchError;
pub use evolve::{evolve_search, EvolveConfig};
pub use fidelity::{
    fidelity_ladder_search, fidelity_ladder_search_with_pool, promote_by_score, LadderConfig,
    LadderOutcome, StageReport, FULL_FIDELITY_UNIT_BASE,
};
pub use rank::{
    round_robin_cost, round_robin_rank, round_robin_rank_checked, tournament_rank,
    tournament_rank_checked, RankOutcome,
};
pub use zeroshot::{
    zero_shot_rank, zero_shot_search, zero_shot_search_laddered, FinalistPromotion, SearchOutcome,
    SearchTiming, ZeroShotRank,
};
