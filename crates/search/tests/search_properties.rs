//! Search-strategy property and behaviour tests beyond the unit suites.

use octs_comparator::{Tahc, TahcConfig};
use octs_search::{
    evolve_search, grid_search_hpo, round_robin_cost, round_robin_rank, tournament_rank,
    EvolveConfig,
};
use octs_space::{ArchDag, ArchHyper, Edge, HyperParams, HyperSpace, JointSpace, OpKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn comparator(seed: u64) -> Tahc {
    Tahc::new(TahcConfig { task_aware: false, ..TahcConfig::test() }, HyperSpace::scaled(), seed)
}

#[test]
fn round_robin_top1_beats_majority() {
    // The top-1 by win count must have won at least as many duels as any
    // other candidate — verify by recounting independently.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let pool = JointSpace::scaled().sample_distinct(7, &mut rng);
    let tahc = comparator(0);
    let order = round_robin_rank(&tahc, None, &pool);
    let wins = |idx: usize, tahc: &Tahc| -> usize {
        (0..pool.len())
            .filter(|&j| j != idx)
            .filter(|&j| {
                if idx < j {
                    tahc.compare(None, &pool[idx], &pool[j])
                } else {
                    !tahc.compare(None, &pool[j], &pool[idx])
                }
            })
            .count()
    };
    let top_wins = wins(order[0], &tahc);
    for &i in &order[1..] {
        assert!(top_wins >= wins(i, &tahc), "top-1 must maximize wins");
    }
}

#[test]
fn tournament_cost_is_linear_not_quadratic() {
    assert_eq!(round_robin_cost(100), 4950);
    // tournament with r rounds makes ~k*r comparisons; at k=100, r=2 that is
    // 200 << 4950, which is the whole point of the seeding stage.
    assert!(100 * 2 < round_robin_cost(100) / 10);
}

#[test]
fn evolution_returns_distinct_top_candidates() {
    let space = JointSpace::scaled();
    let tahc = comparator(3);
    let cfg = EvolveConfig { k_s: 32, generations: 3, top_k: 3, ..EvolveConfig::test() };
    let top = evolve_search(&tahc, None, &space, &cfg);
    let fps: std::collections::HashSet<u64> = top.iter().map(ArchHyper::fingerprint).collect();
    assert_eq!(fps.len(), top.len(), "top-K must not contain duplicates");
}

#[test]
fn grid_search_prefers_lower_validation() {
    // On a fixed task the returned (H, I) must achieve the minimum val MAE
    // among the grid points (re-verified independently).
    use octs_data::{DatasetProfile, Domain, ForecastSetting, ForecastTask};
    use octs_model::{train_forecaster, Forecaster, ModelDims, TrainConfig};
    let p = DatasetProfile::custom("gs", Domain::Traffic, 3, 200, 24, 0.3, 0.1, 10.0, 17);
    let task = ForecastTask::new(p.generate(0), ForecastSetting::multi(4, 2), 0.6, 0.2, 4);
    let arch = ArchDag::new(
        3,
        vec![Edge { from: 0, to: 1, op: OpKind::Gdcc }, Edge { from: 1, to: 2, op: OpKind::Dgcn }],
    )
    .unwrap();
    let template = ArchHyper::new(arch, HyperParams { b: 1, c: 3, h: 8, i: 16, u: 0, delta: 0 });
    let cfg = TrainConfig::test();
    let (best, best_report) = grid_search_hpo(&task, &template, &[8, 16], &[16], &cfg);
    let dims = ModelDims::new(task.data.n(), task.data.f(), task.setting);
    for h in [8usize, 16] {
        let mut hp = template.hyper;
        hp.h = h;
        hp.i = 16;
        let ah = ArchHyper::new(template.arch.clone(), hp);
        let mut fc = Forecaster::new(ah, dims, &task.data.adjacency, cfg.seed);
        let report = train_forecaster(&mut fc, &task, &cfg);
        assert!(
            best_report.best_val_mae <= report.best_val_mae + 1e-6,
            "grid winner H={} must be at least as good as H={h}",
            best.hyper.h
        );
    }
}

#[test]
fn tournament_and_round_robin_agree_under_consistent_comparator() {
    // Train the comparator on a consistent rule (smaller H is better); then
    // the sparse tournament's top pick must land in the upper half of the
    // full round-robin ranking — an untrained (incoherent) comparator gives
    // no such guarantee, which is exactly why AutoCTS+ pre-trains it.
    let space = JointSpace::scaled();
    let mut rng = ChaCha8Rng::seed_from_u64(50);
    let train_pool = space.sample_distinct(10, &mut rng);
    let mut tahc = comparator(0);
    let mut opt = octs_tensor::Adam::new(5e-3, 0.0);
    for _ in 0..25 {
        let mut batch = Vec::new();
        for i in 0..train_pool.len() {
            for j in 0..train_pool.len() {
                if train_pool[i].hyper.h != train_pool[j].hyper.h {
                    let y = if train_pool[i].hyper.h < train_pool[j].hyper.h { 1.0 } else { 0.0 };
                    batch.push((None, &train_pool[i], &train_pool[j], y));
                }
            }
        }
        tahc.train_batch(&mut opt, &batch);
    }

    let mut hits = 0;
    let trials = 5;
    for t in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(80 + t);
        let pool = space.sample_distinct(10, &mut rng);
        let full = round_robin_rank(&tahc, None, &pool);
        let sparse = tournament_rank(&tahc, None, &pool, 3, t);
        let pos = full.iter().position(|&i| i == sparse[0]).unwrap();
        if pos < pool.len() / 2 {
            hits += 1;
        }
    }
    assert!(hits >= 4, "tournament top-1 in upper half only {hits}/{trials} times");
}
