//! Per-task serving lanes: a bounded request queue, a dedicated worker
//! thread owning the model, and the dynamic micro-batcher between them.

use crate::model::ServableModel;
use crate::ServeError;
use octs_tensor::Tensor;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When and how hard the micro-batcher coalesces.
///
/// The worker takes the first queued request, greedily drains whatever else
/// is already queued (zero added latency — under load, requests pile up
/// while the previous batch computes), and then, if the batch is still
/// below `max_batch` and `max_delay` is nonzero, keeps the batch open up to
/// `max_delay` waiting for stragglers — the classic latency/throughput
/// dial. `max_batch == 1` disables coalescing entirely (the unbatched
/// baseline the serving bench compares against); `max_delay == 0` gives
/// pure queue-pressure batching.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Largest batch one forward may carry.
    pub max_batch: usize,
    /// Longest a batch stays open waiting for more requests.
    pub max_delay: Duration,
    /// Bound of the lane's request queue; submits block (backpressure) once
    /// this many requests are waiting.
    pub queue_depth: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self { max_batch: 32, max_delay: Duration::from_millis(2), queue_depth: 256 }
    }
}

impl BatchPolicy {
    /// One-request-per-forward policy: the unbatched baseline.
    pub fn unbatched() -> Self {
        Self { max_batch: 1, max_delay: Duration::ZERO, ..Self::default() }
    }
}

/// A completed forecast.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// Registry version of the model that produced it.
    pub version: u32,
    /// Predicted values, `[out_steps, N]`.
    pub values: Tensor,
}

/// Handle to a forecast still in flight; [`PendingForecast::wait`] blocks
/// for the result. Dropping it abandons the request (the worker's reply is
/// discarded harmlessly).
pub struct PendingForecast {
    rx: Receiver<Result<Forecast, ServeError>>,
}

impl PendingForecast {
    /// Blocks until the forecast (or its failure) arrives.
    pub fn wait(self) -> Result<Forecast, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

struct Job {
    input: Tensor,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Forecast, ServeError>>,
}

/// One task's serving lane: bounded queue in, dedicated worker out.
///
/// The worker thread owns the [`ServableModel`] exclusively — the
/// forecaster's forward needs `&mut self`, and a single owner beats a lock
/// convoy of client threads. Hot swaps arrive through a mailbox the worker
/// drains at batch boundaries, so an in-flight batch always completes on the
/// version it started with.
pub struct TaskLane {
    tx: Option<SyncSender<Job>>,
    swap: Arc<Mutex<Option<ServableModel>>>,
    version: Arc<AtomicU32>,
    worker: Option<JoinHandle<()>>,
}

impl TaskLane {
    /// Spawns the worker thread serving `model` under `policy`.
    pub fn spawn(model: ServableModel, policy: BatchPolicy) -> Self {
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        assert!(policy.queue_depth >= 1, "queue_depth must be at least 1");
        let (tx, rx) = mpsc::sync_channel::<Job>(policy.queue_depth);
        let swap = Arc::new(Mutex::new(None));
        let version = Arc::new(AtomicU32::new(model.version));
        let worker = {
            let swap = Arc::clone(&swap);
            let version = Arc::clone(&version);
            std::thread::Builder::new()
                .name(format!("serve-{}", model.task))
                .spawn(move || worker_loop(model, policy, rx, swap, version))
                .expect("spawn serving worker")
        };
        Self { tx: Some(tx), swap, version, worker: Some(worker) }
    }

    /// Registry version currently being served (in-flight batches may still
    /// complete on the previous one for an instant after a swap).
    pub fn version(&self) -> u32 {
        self.version.load(Ordering::Acquire)
    }

    /// Queues `model` for hot swap; the worker installs it at the next batch
    /// boundary. A second swap before that overwrites the first (latest
    /// wins).
    pub fn swap(&self, model: ServableModel) {
        *self.swap.lock().unwrap_or_else(|e| e.into_inner()) = Some(model);
    }

    /// Submits one forecast request (`input` is `[F, N, P]`) and blocks for
    /// the result.
    pub fn submit(&self, input: Tensor) -> Result<Forecast, ServeError> {
        self.submit_async(input).wait()
    }

    /// Submits one forecast request without waiting. Blocks only if the
    /// lane's queue is full (backpressure).
    pub fn submit_async(&self, input: Tensor) -> PendingForecast {
        let (reply, rx) = mpsc::channel();
        let job = Job { input, enqueued: Instant::now(), reply };
        if let Some(tx) = &self.tx {
            // A send error means the worker is gone; the dropped reply sender
            // then surfaces as Shutdown in wait().
            let _ = tx.send(job);
        }
        PendingForecast { rx }
    }
}

impl Drop for TaskLane {
    fn drop(&mut self) {
        // Closing the queue lets the worker drain remaining jobs and exit.
        drop(self.tx.take());
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    mut model: ServableModel,
    policy: BatchPolicy,
    rx: Receiver<Job>,
    swap: Arc<Mutex<Option<ServableModel>>>,
    version: Arc<AtomicU32>,
) {
    loop {
        // Block for the batch-opening request.
        let Ok(first) = rx.recv() else { break };

        // Batch boundary: install a pending hot swap before any new work.
        if let Some(next) = swap.lock().unwrap_or_else(|e| e.into_inner()).take() {
            version.store(next.version, Ordering::Release);
            octs_obs::event("serve.swap", next.version as f64, &next.task);
            model = next;
        }

        let mut batch = vec![first];
        // Greedy drain: take everything already queued, at no latency cost.
        while batch.len() < policy.max_batch {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        // Dynamic window: hold the batch open for stragglers.
        if batch.len() < policy.max_batch && !policy.max_delay.is_zero() {
            let deadline = Instant::now() + policy.max_delay;
            while batch.len() < policy.max_batch {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match rx.recv_timeout(left) {
                    Ok(job) => batch.push(job),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }

        octs_obs::observe("serve.batch_size", batch.len() as f64);
        for job in &batch {
            octs_obs::observe("serve.queue_wait_us", job.enqueued.elapsed().as_micros() as f64);
        }

        // Split off requests violating the model's input contract; they get
        // an error reply instead of poisoning the whole batch.
        let expected = model.input_shape();
        let (good, bad): (Vec<Job>, Vec<Job>) =
            batch.into_iter().partition(|j| j.input.shape() == expected);
        for job in bad {
            let _ = job.reply.send(Err(ServeError::ShapeMismatch {
                expected: expected.to_vec(),
                got: job.input.shape().to_vec(),
            }));
        }
        if good.is_empty() {
            continue;
        }

        let inputs: Vec<&Tensor> = good.iter().map(|j| &j.input).collect();
        let outputs = model.predict_batch(&inputs);
        octs_obs::counter("serve.requests", good.len() as u64);
        octs_obs::counter("serve.batches", 1);
        for (job, values) in good.into_iter().zip(outputs) {
            octs_obs::observe("serve.e2e_us", job.enqueued.elapsed().as_micros() as f64);
            let _ = job.reply.send(Ok(Forecast { version: model.version, values }));
        }
    }
}
