//! Per-task serving lanes: a bounded request queue with admission control,
//! a dedicated worker thread owning the model, the dynamic micro-batcher
//! between them, and the self-healing machinery — per-request deadlines,
//! `catch_unwind`-guarded forwards, and a per-lane circuit breaker — that
//! keeps a lane answering (with typed errors, never hangs) under overload
//! and injected faults.

use crate::model::{validate_outputs, ServableModel};
use crate::ServeError;
use octs_tensor::Tensor;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Prefix of the per-lane forward fault-injection site. The full site name
/// is task-qualified (see [`forward_fault_site`]) so a chaos plan can poison
/// one lane's forwards without touching the lanes it expects to stay healthy.
pub const FORWARD_FAULT_SITE: &str = "serve.forward";

/// The fault-injection site name of `task`'s lane forwards, e.g.
/// `serve.forward.metr`. The op ordinal counts the lane's guarded forward
/// attempts (shape-valid, unexpired batches), starting at 0.
pub fn forward_fault_site(task: &str) -> String {
    format!("{FORWARD_FAULT_SITE}.{task}")
}

/// What a submit does when the lane's queue already holds `queue_depth`
/// requests — the admission-control half of overload behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Block the submitting thread until space frees (backpressure). The
    /// pre-resilience default: no request is ever shed, but a client may
    /// wait unboundedly while the backlog drains.
    #[default]
    Block,
    /// Reject the *new* request immediately with
    /// [`ServeError::Overloaded`] — overload turns into fast typed
    /// rejections instead of queueing delay.
    RejectWhenFull,
    /// Admit the new request and shed the *oldest* queued one (its reply
    /// resolves to [`ServeError::Overloaded`]) — freshest-first service for
    /// workloads where a stale forecast is worthless anyway.
    DropOldest,
}

/// When and how hard the micro-batcher coalesces, how deep the lane queue
/// is and what happens when it fills, and how the lane's circuit breaker
/// heals a failing worker.
///
/// The worker takes the first queued request, greedily drains whatever else
/// is already queued (zero added latency — under load, requests pile up
/// while the previous batch computes), and then, if the batch is still
/// below `max_batch` and `max_delay` is nonzero, keeps the batch open up to
/// `max_delay` waiting for stragglers — the classic latency/throughput
/// dial. `max_batch == 1` disables coalescing entirely (the unbatched
/// baseline the serving bench compares against); `max_delay == 0` gives
/// pure queue-pressure batching.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Largest batch one forward may carry.
    pub max_batch: usize,
    /// Longest a batch stays open waiting for more requests.
    pub max_delay: Duration,
    /// Bound of the lane's request queue; `shed` decides what a submit does
    /// once this many requests are waiting.
    pub queue_depth: usize,
    /// Admission control once the queue is full.
    pub shed: ShedPolicy,
    /// Consecutive failed forwards (panic or non-finite output) before the
    /// lane's circuit breaker opens.
    pub breaker_threshold: usize,
    /// First open period of the breaker; doubles after every failed heal or
    /// failed half-open probe, up to `breaker_max_backoff`.
    pub breaker_backoff: Duration,
    /// Ceiling of the breaker's exponential backoff.
    pub breaker_max_backoff: Duration,
    /// Registry reload attempts per heal; transient IO failures are retried
    /// with doubling `reload_backoff` between tries.
    pub reload_retries: usize,
    /// First wait between heal reload attempts.
    pub reload_backoff: Duration,
    /// Precision policy models are loaded at: `None` serves from the tape
    /// engine (the benchmark baseline); `Some(tier)` serves compiled frozen
    /// plans, with [`octs_tensor::Precision::Int8`] subject to the load-time
    /// conformance probe (see [`crate::ServableModel::from_checkpoint_with`]).
    pub precision: Option<octs_tensor::Precision>,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_depth: 256,
            shed: ShedPolicy::Block,
            breaker_threshold: 3,
            breaker_backoff: Duration::from_millis(50),
            breaker_max_backoff: Duration::from_secs(2),
            reload_retries: 3,
            reload_backoff: Duration::from_millis(10),
            precision: Some(octs_tensor::Precision::Fused),
        }
    }
}

impl BatchPolicy {
    /// One-request-per-forward policy: the unbatched baseline.
    pub fn unbatched() -> Self {
        Self { max_batch: 1, max_delay: Duration::ZERO, ..Self::default() }
    }

    /// The same policy with admission control `shed`.
    pub fn with_shed(self, shed: ShedPolicy) -> Self {
        Self { shed, ..self }
    }
}

/// A completed forecast.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// Registry version of the model that produced it.
    pub version: u32,
    /// Predicted values, `[out_steps, N]`.
    pub values: Tensor,
}

/// Handle to a forecast still in flight; [`PendingForecast::wait`] blocks
/// for the result and [`PendingForecast::wait_timeout`] bounds the wait.
/// Dropping it abandons the request (the worker's reply is discarded
/// harmlessly).
pub struct PendingForecast {
    rx: Receiver<Result<Forecast, ServeError>>,
}

impl PendingForecast {
    /// Blocks until the forecast (or its typed failure) arrives.
    pub fn wait(self) -> Result<Forecast, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }

    /// Blocks at most `timeout` for the forecast. Returns
    /// [`ServeError::DeadlineExceeded`] when the reply has not arrived in
    /// time — the client-side half of the deadline story (the request is
    /// abandoned; the worker's eventual reply is discarded harmlessly).
    pub fn wait_timeout(self, timeout: Duration) -> Result<Forecast, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => reply,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::Shutdown),
        }
    }

    /// A handle that is already resolved to `err` — what a shed or
    /// shut-down submit hands back so `submit_async` keeps its infallible
    /// shape while every rejection stays typed.
    fn resolved(err: ServeError) -> Self {
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(Err(err));
        Self { rx }
    }
}

struct Job {
    input: Tensor,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<Forecast, ServeError>>,
}

/// The lane's bounded queue: a `VecDeque` under a mutex with two condvars
/// (space for blocking producers, work for the consumer) instead of an
/// `mpsc` channel, because admission control needs to *inspect and evict*
/// queued jobs (drop-oldest, reject-when-full) and shutdown needs every
/// later submit to fail promptly with a typed error.
struct LaneQueue {
    state: Mutex<QueueState>,
    nonempty: Condvar,
    nonfull: Condvar,
    depth: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

enum Popped {
    Job(Box<Job>),
    TimedOut,
    Closed,
}

impl LaneQueue {
    fn new(depth: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            nonempty: Condvar::new(),
            nonfull: Condvar::new(),
            depth,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits `job` under `shed`. `Err` is always typed: `Overloaded` when
    /// shed, `Shutdown` once the lane closed (also while a `Block` submit
    /// is waiting for space).
    fn push(&self, job: Job, shed: ShedPolicy, task: &str) -> Result<(), ServeError> {
        let mut st = self.lock();
        if st.closed {
            return Err(ServeError::Shutdown);
        }
        if st.jobs.len() >= self.depth {
            match shed {
                ShedPolicy::Block => {
                    while st.jobs.len() >= self.depth && !st.closed {
                        st = self.nonfull.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    if st.closed {
                        return Err(ServeError::Shutdown);
                    }
                }
                ShedPolicy::RejectWhenFull => {
                    octs_obs::counter("serve.shed", 1);
                    return Err(ServeError::Overloaded {
                        task: task.to_string(),
                        queue_depth: self.depth,
                    });
                }
                ShedPolicy::DropOldest => {
                    if let Some(oldest) = st.jobs.pop_front() {
                        octs_obs::counter("serve.shed", 1);
                        let _ = oldest.reply.send(Err(ServeError::Overloaded {
                            task: task.to_string(),
                            queue_depth: self.depth,
                        }));
                    }
                }
            }
        }
        st.jobs.push_back(job);
        drop(st);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the lane is closed *and*
    /// drained (queued work always completes through shutdown).
    fn pop_blocking(&self) -> Option<Job> {
        let mut st = self.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                drop(st);
                self.nonfull.notify_one();
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.nonempty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn try_pop(&self) -> Option<Job> {
        let job = self.lock().jobs.pop_front();
        if job.is_some() {
            self.nonfull.notify_one();
        }
        job
    }

    fn pop_timeout(&self, timeout: Duration) -> Popped {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                drop(st);
                self.nonfull.notify_one();
                return Popped::Job(Box::new(job));
            }
            if st.closed {
                return Popped::Closed;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Popped::TimedOut;
            }
            let (guard, _timed_out) =
                self.nonempty.wait_timeout(st, left).unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Closes the lane: queued jobs still drain, later submits fail with
    /// [`ServeError::Shutdown`] promptly, blocked `Block`-policy submits
    /// wake with the same error.
    fn close(&self) {
        self.lock().closed = true;
        self.nonempty.notify_all();
        self.nonfull.notify_all();
    }
}

/// Re-loads a lane's model (typically from the registry's latest checkpoint)
/// during a self-heal; installed by [`TaskLane::spawn_with_reloader`].
pub type Reloader = Arc<dyn Fn() -> Result<ServableModel, ServeError> + Send + Sync>;

/// One task's serving lane: bounded queue in, dedicated worker out.
///
/// The worker thread owns the [`ServableModel`] exclusively — the
/// forecaster's forward needs `&mut self`, and a single owner beats a lock
/// convoy of client threads. Hot swaps arrive through a mailbox the worker
/// drains at batch boundaries, so an in-flight batch always completes on the
/// version it started with. Every forward runs under `catch_unwind` with a
/// finite-output check, so a poisoned batch fails *only itself* with
/// [`ServeError::ForwardFailed`]; `breaker_threshold` consecutive failures
/// open a circuit breaker that sheds work with [`ServeError::CircuitOpen`]
/// while the lane re-loads its model and probes its way back to healthy.
pub struct TaskLane {
    task: String,
    queue: Arc<LaneQueue>,
    swap: Arc<Mutex<Option<ServableModel>>>,
    version: Arc<AtomicU32>,
    shed: ShedPolicy,
    worker: Option<JoinHandle<()>>,
}

impl TaskLane {
    /// Spawns the worker thread serving `model` under `policy`. A lane
    /// without a reloader still breaks and probes, but heals with the model
    /// it already has; use [`TaskLane::spawn_with_reloader`] to re-load from
    /// a registry.
    pub fn spawn(model: ServableModel, policy: BatchPolicy) -> Self {
        Self::spawn_with_reloader(model, policy, None)
    }

    /// Spawns the worker thread serving `model` under `policy`, with
    /// `reloader` as the circuit breaker's heal path.
    pub fn spawn_with_reloader(
        model: ServableModel,
        policy: BatchPolicy,
        reloader: Option<Reloader>,
    ) -> Self {
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        assert!(policy.queue_depth >= 1, "queue_depth must be at least 1");
        assert!(policy.breaker_threshold >= 1, "breaker_threshold must be at least 1");
        let task = model.task.clone();
        let queue = Arc::new(LaneQueue::new(policy.queue_depth));
        let swap = Arc::new(Mutex::new(None));
        let version = Arc::new(AtomicU32::new(model.version));
        let ctx = WorkerCtx {
            policy,
            queue: Arc::clone(&queue),
            swap: Arc::clone(&swap),
            version: Arc::clone(&version),
            reloader,
            site: forward_fault_site(&task),
            task: task.clone(),
        };
        let worker = std::thread::Builder::new()
            .name(format!("serve-{task}"))
            .spawn(move || worker_loop(model, ctx))
            .expect("spawn serving worker");
        Self { task, queue, swap, version, shed: policy.shed, worker: Some(worker) }
    }

    /// Registry version currently being served (in-flight batches may still
    /// complete on the previous one for an instant after a swap).
    pub fn version(&self) -> u32 {
        self.version.load(Ordering::Acquire)
    }

    /// Queues `model` for hot swap; the worker installs it at the next batch
    /// boundary. A second swap before that overwrites the first (latest
    /// wins).
    pub fn swap(&self, model: ServableModel) {
        *self.swap.lock().unwrap_or_else(|e| e.into_inner()) = Some(model);
    }

    /// Closes the lane: requests already queued still complete, every later
    /// submit fails promptly with [`ServeError::Shutdown`], and the worker
    /// exits once drained.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Submits one forecast request (`input` is `[F, N, P]`) and blocks for
    /// the result.
    pub fn submit(&self, input: Tensor) -> Result<Forecast, ServeError> {
        self.submit_async(input).wait()
    }

    /// Submits one forecast request without waiting for the result.
    ///
    /// Admission follows the lane's [`ShedPolicy`] when the queue is full:
    /// `Block` blocks this call until space frees (backpressure — the only
    /// case it blocks), `RejectWhenFull` returns a handle already resolved
    /// to [`ServeError::Overloaded`], and `DropOldest` admits the request
    /// by shedding the oldest queued one. After [`TaskLane::close`] the
    /// handle resolves to [`ServeError::Shutdown`] without blocking.
    pub fn submit_async(&self, input: Tensor) -> PendingForecast {
        self.enqueue(input, None, self.shed).unwrap_or_else(PendingForecast::resolved)
    }

    /// Like [`TaskLane::submit_async`], with a deadline: if the request is
    /// still queued `ttl` from now, the worker drops it at dequeue —
    /// replying [`ServeError::DeadlineExceeded`] — instead of wasting a
    /// pooled-GEMM slot on a forecast nobody is waiting for.
    pub fn submit_async_deadline(&self, input: Tensor, ttl: Duration) -> PendingForecast {
        self.enqueue(input, Some(ttl), self.shed).unwrap_or_else(PendingForecast::resolved)
    }

    /// Admission-controlled submit that never blocks: a full queue under the
    /// `Block` policy rejects with [`ServeError::Overloaded`] instead of
    /// waiting (under `DropOldest` the oldest queued request is shed and the
    /// new one is admitted, as usual).
    pub fn try_submit(&self, input: Tensor) -> Result<PendingForecast, ServeError> {
        self.enqueue(input, None, Self::nonblocking(self.shed))
    }

    /// [`TaskLane::try_submit`] with a dequeue deadline of `ttl` from now.
    pub fn try_submit_deadline(
        &self,
        input: Tensor,
        ttl: Duration,
    ) -> Result<PendingForecast, ServeError> {
        self.enqueue(input, Some(ttl), Self::nonblocking(self.shed))
    }

    fn nonblocking(shed: ShedPolicy) -> ShedPolicy {
        match shed {
            ShedPolicy::Block => ShedPolicy::RejectWhenFull,
            other => other,
        }
    }

    fn enqueue(
        &self,
        input: Tensor,
        ttl: Option<Duration>,
        shed: ShedPolicy,
    ) -> Result<PendingForecast, ServeError> {
        let (reply, rx) = mpsc::channel();
        let now = Instant::now();
        let job = Job { input, enqueued: now, deadline: ttl.map(|d| now + d), reply };
        self.queue.push(job, shed, &self.task)?;
        Ok(PendingForecast { rx })
    }
}

impl Drop for TaskLane {
    fn drop(&mut self) {
        // Closing the queue lets the worker drain remaining jobs and exit.
        self.queue.close();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

struct WorkerCtx {
    policy: BatchPolicy,
    queue: Arc<LaneQueue>,
    swap: Arc<Mutex<Option<ServableModel>>>,
    version: Arc<AtomicU32>,
    reloader: Option<Reloader>,
    site: String,
    task: String,
}

fn worker_loop(mut model: ServableModel, ctx: WorkerCtx) {
    let policy = ctx.policy;
    // Ordinal of guarded forward attempts — the fault-injection key at the
    // lane's `serve.forward.<task>` site.
    let mut forward_op: u64 = 0;
    let mut consecutive_failures = 0usize;
    let mut backoff = policy.breaker_backoff;
    // Half-open: the breaker just healed; the next batch is a one-request
    // probe that decides between closing the breaker and re-opening it.
    let mut probing = false;

    loop {
        // Block for the batch-opening request.
        let Some(first) = ctx.queue.pop_blocking() else { break };

        // Batch boundary: install a pending hot swap before any new work.
        if let Some(next) = ctx.swap.lock().unwrap_or_else(|e| e.into_inner()).take() {
            ctx.version.store(next.version, Ordering::Release);
            octs_obs::event("serve.swap", next.version as f64, &next.task);
            model = next;
        }

        let cap = if probing { 1 } else { policy.max_batch };
        let mut batch = vec![first];
        // Greedy drain: take everything already queued, at no latency cost.
        while batch.len() < cap {
            match ctx.queue.try_pop() {
                Some(job) => batch.push(job),
                None => break,
            }
        }
        // Dynamic window: hold the batch open for stragglers.
        if batch.len() < cap && !policy.max_delay.is_zero() {
            let deadline = Instant::now() + policy.max_delay;
            while batch.len() < cap {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match ctx.queue.pop_timeout(left) {
                    Popped::Job(job) => batch.push(*job),
                    Popped::TimedOut | Popped::Closed => break,
                }
            }
        }

        // Deadline enforcement at dequeue: a request whose caller already
        // gave up is answered typed, not computed.
        let now = Instant::now();
        let (live, expired): (Vec<Job>, Vec<Job>) =
            batch.into_iter().partition(|j| j.deadline.is_none_or(|d| d > now));
        if !expired.is_empty() {
            octs_obs::counter("serve.deadline_expired", expired.len() as u64);
            for job in expired {
                let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
            }
        }
        if live.is_empty() {
            continue;
        }

        octs_obs::observe("serve.batch_size", live.len() as f64);
        for job in &live {
            octs_obs::observe("serve.queue_wait_us", job.enqueued.elapsed().as_micros() as f64);
        }

        // Split off requests violating the model's input contract; they get
        // an error reply instead of poisoning the whole batch.
        let expected = model.input_shape();
        let (good, bad): (Vec<Job>, Vec<Job>) =
            live.into_iter().partition(|j| j.input.shape() == expected);
        for job in bad {
            let _ = job.reply.send(Err(ServeError::ShapeMismatch {
                expected: expected.to_vec(),
                got: job.input.shape().to_vec(),
            }));
        }
        if good.is_empty() {
            continue;
        }

        let op = forward_op;
        forward_op += 1;
        let inputs: Vec<&Tensor> = good.iter().map(|j| &j.input).collect();
        // The guarded forward: a panic (real or injected) or non-finite
        // output fails only this batch — typed, never fatal to the lane.
        let outcome: Result<Vec<Tensor>, String> = catch_unwind(AssertUnwindSafe(|| {
            octs_fault::io_delay(&ctx.site, op); // scheduled slow forward
            octs_fault::maybe_panic_site(&ctx.site, op);
            let mut outputs = model.predict_batch(&inputs);
            if octs_fault::nan_at_site(&ctx.site, op) {
                for t in &mut outputs {
                    *t = Tensor::full(t.shape().to_vec(), f32::NAN);
                }
            }
            validate_outputs(&outputs).map(|()| outputs)
        }))
        .unwrap_or_else(|_| Err("forward panicked".to_string()));

        match outcome {
            Ok(outputs) => {
                consecutive_failures = 0;
                if probing {
                    // Half-open probe succeeded: the breaker closes. Recorded
                    // before the replies go out, so a client that saw the Ok
                    // also sees the closed-breaker counters.
                    probing = false;
                    backoff = policy.breaker_backoff;
                    octs_obs::counter("serve.breaker_close", 1);
                    octs_obs::event("serve.breaker", 0.0, &ctx.task);
                }
                octs_obs::counter("serve.requests", good.len() as u64);
                octs_obs::counter("serve.batches", 1);
                for (job, values) in good.into_iter().zip(outputs) {
                    octs_obs::observe("serve.e2e_us", job.enqueued.elapsed().as_micros() as f64);
                    let _ = job.reply.send(Ok(Forecast { version: model.version, values }));
                }
            }
            Err(detail) => {
                octs_obs::counter("serve.forward_failed", good.len() as u64);
                for job in good {
                    let _ = job.reply.send(Err(ServeError::ForwardFailed {
                        task: ctx.task.clone(),
                        detail: detail.clone(),
                    }));
                }
                consecutive_failures += 1;
                if probing || consecutive_failures >= policy.breaker_threshold {
                    consecutive_failures = 0;
                    if !open_until_healed(&mut model, &ctx, &mut backoff) {
                        break; // lane closed while the breaker was open
                    }
                    probing = true;
                }
            }
        }
    }
}

/// The breaker's open state: reject queued and incoming work with
/// [`ServeError::CircuitOpen`] for the backoff period, then try to re-load
/// the model (transient IO failures retried inside the reloader), doubling
/// the backoff after every failed heal. Returns `false` when the lane
/// closed while open (the worker should exit), `true` when the breaker
/// moves to half-open — the caller then serves a one-request probe batch
/// that decides between closing and re-opening.
fn open_until_healed(model: &mut ServableModel, ctx: &WorkerCtx, backoff: &mut Duration) -> bool {
    loop {
        octs_obs::counter("serve.breaker_open", 1);
        octs_obs::event("serve.breaker", 1.0, &ctx.task);
        let until = Instant::now() + *backoff;
        loop {
            let left = until.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match ctx.queue.pop_timeout(left) {
                Popped::Job(job) => {
                    let _ = job.reply.send(Err(ServeError::CircuitOpen { task: ctx.task.clone() }));
                }
                Popped::TimedOut => break,
                Popped::Closed => return false,
            }
        }
        // The next open period — after a failed heal below or a failed
        // half-open probe in the caller — waits longer.
        *backoff = backoff.saturating_mul(2).min(ctx.policy.breaker_max_backoff);
        match &ctx.reloader {
            // No registry behind this lane: probe with the model we have.
            None => return true,
            Some(reload) => match reload() {
                Ok(next) => {
                    ctx.version.store(next.version, Ordering::Release);
                    octs_obs::counter("serve.lane_restart", 1);
                    octs_obs::event("serve.lane_restart", next.version as f64, &ctx.task);
                    *model = next;
                    return true;
                }
                Err(e) => {
                    octs_obs::event("serve.heal_failed", 0.0, &e.to_string());
                }
            },
        }
    }
}
