//! Servable checkpoints: the on-disk unit the registry stores and the
//! in-memory model a lane serves from.

use crate::ServeError;
use octs_data::Adjacency;
use octs_model::{Forecaster, ModelDims};
use octs_space::ArchHyper;
use octs_tensor::{ParamStore, Tensor};
use serde::{Deserialize, Serialize};

/// Envelope schema version of [`ServableCheckpoint`] payloads.
pub const SERVABLE_VERSION: u32 = 1;

/// Everything needed to reconstruct a trained forecaster for serving: the
/// winning arch-hyper, the shape contract, the task graph, and the trained
/// weights. Serialized as the payload of a checksummed `persist` envelope.
#[derive(Serialize, Deserialize)]
pub struct ServableCheckpoint {
    /// Task identifier — doubles as the registry directory name.
    pub task: String,
    /// Registry version, assigned by [`crate::ModelRegistry::publish`]
    /// (0 until published).
    pub version: u32,
    /// The searched winner this checkpoint realizes.
    pub ah: ArchHyper,
    /// Shape contract the weights were trained under.
    pub dims: ModelDims,
    /// Task adjacency the spatial operators diffuse over.
    pub adjacency: Adjacency,
    /// Trained parameters.
    pub params: ParamStore,
    /// Seed the forecaster was built with (only feeds the eval-mode-unused
    /// dropout RNG, kept for reproducibility bookkeeping).
    pub seed: u64,
}

impl ServableCheckpoint {
    /// Packages a trained forecaster for publication. The registry assigns
    /// the version at publish time.
    pub fn new(task: impl Into<String>, fc: &Forecaster, adjacency: &Adjacency, seed: u64) -> Self {
        Self {
            task: task.into(),
            version: 0,
            ah: fc.ah.clone(),
            dims: fc.dims,
            adjacency: adjacency.clone(),
            params: fc.ps.snapshot(),
            seed,
        }
    }
}

/// A checkpoint rebuilt into a live, validated, evaluation-mode model — the
/// thing a [`crate::TaskLane`] worker owns and forwards through.
pub struct ServableModel {
    /// Registry version this model was loaded from.
    pub version: u32,
    /// Task the model serves.
    pub task: String,
    fc: Forecaster,
}

impl ServableModel {
    /// Rebuilds and validates a model from a loaded checkpoint.
    ///
    /// Validation is the poisoned-model tripwire: every stored weight must be
    /// finite and a probe forward on a zero input must produce a finite
    /// forecast. A checkpoint that fails either check is rejected with
    /// [`ServeError::Poisoned`] so the caller can keep serving the previous
    /// version.
    pub fn from_checkpoint(ckpt: ServableCheckpoint) -> Result<Self, ServeError> {
        let ServableCheckpoint { task, version, ah, dims, adjacency, params, seed } = ckpt;
        if !params.all_finite() {
            return Err(ServeError::Poisoned {
                task,
                version,
                detail: "non-finite parameter values".to_string(),
            });
        }
        let mut fc = Forecaster::from_trained(ah, dims, &adjacency, params, seed);
        let probe = Tensor::zeros([1, dims.f, dims.n, dims.p]);
        if !fc.predict(&probe).all_finite() {
            return Err(ServeError::Poisoned {
                task,
                version,
                detail: "probe forecast is non-finite".to_string(),
            });
        }
        Ok(Self { version, task, fc })
    }

    /// The `[F, N, P]` input shape every request must carry.
    pub fn input_shape(&self) -> [usize; 3] {
        [self.fc.dims.f, self.fc.dims.n, self.fc.dims.p]
    }

    /// Shape contract of the served model.
    pub fn dims(&self) -> ModelDims {
        self.fc.dims
    }

    /// One batched eval-mode forward: stacks `inputs` (each `[F, N, P]`)
    /// into `[B, F, N, P]`, runs a single pooled-GEMM forward, and demuxes
    /// the `[B, out_steps, N]` prediction back into per-request tensors.
    ///
    /// Each returned row is bit-identical to the forecast a lone
    /// single-request forward would produce: every output element is a dot
    /// product over one batch row, independent of `B`.
    pub fn predict_batch(&mut self, inputs: &[&Tensor]) -> Vec<Tensor> {
        let x = Tensor::stack(inputs);
        self.fc.predict(&x).unstack()
    }
}

/// The post-forward half of the poisoned-model tripwire: every served
/// forecast must be finite. Returns the failure detail so the batcher can
/// reply [`ServeError::ForwardFailed`] and feed its circuit breaker.
pub fn validate_outputs(outputs: &[Tensor]) -> Result<(), String> {
    match outputs.iter().position(|t| !t.all_finite()) {
        None => Ok(()),
        Some(i) => Err(format!("non-finite forecast in batch row {i}")),
    }
}
