//! Servable checkpoints: the on-disk unit the registry stores and the
//! in-memory model a lane serves from.

use crate::ServeError;
use octs_data::Adjacency;
use octs_model::{Forecaster, FrozenForecaster, ModelDims};
use octs_space::ArchHyper;
use octs_tensor::{ParamStore, Precision, Tensor};
use serde::{Deserialize, Serialize};

/// Envelope schema version of [`ServableCheckpoint`] payloads.
pub const SERVABLE_VERSION: u32 = 1;

/// Prefix of the per-task quantized-load-probe fault-injection site; the
/// full name is task-qualified (see [`quant_fault_site`]).
pub const QUANT_FAULT_SITE: &str = "serve.quant";

/// The fault-injection site name of `task`'s int8 load probes, e.g.
/// `serve.quant.metr`. The op ordinal is the checkpoint's registry version
/// minus one (version 1 probes at ordinal 0), so a seeded chaos plan can
/// poison the probe of one specific published version.
pub fn quant_fault_site(task: &str) -> String {
    format!("{QUANT_FAULT_SITE}.{task}")
}

/// Normalized max-error budget the int8 load probe must meet: the largest
/// `|int8 - reference| / max(1, max|reference|)` over the probe forecast.
/// A checkpoint whose quantized engine exceeds it is served at
/// [`Precision::Fused`] instead (never silently wrong forecasts).
pub const INT8_PROBE_BUDGET: f32 = 5e-2;

/// Everything needed to reconstruct a trained forecaster for serving: the
/// winning arch-hyper, the shape contract, the task graph, and the trained
/// weights. Serialized as the payload of a checksummed `persist` envelope.
#[derive(Serialize, Deserialize)]
pub struct ServableCheckpoint {
    /// Task identifier — doubles as the registry directory name.
    pub task: String,
    /// Registry version, assigned by [`crate::ModelRegistry::publish`]
    /// (0 until published).
    pub version: u32,
    /// The searched winner this checkpoint realizes.
    pub ah: ArchHyper,
    /// Shape contract the weights were trained under.
    pub dims: ModelDims,
    /// Task adjacency the spatial operators diffuse over.
    pub adjacency: Adjacency,
    /// Trained parameters.
    pub params: ParamStore,
    /// Seed the forecaster was built with (only feeds the eval-mode-unused
    /// dropout RNG, kept for reproducibility bookkeeping).
    pub seed: u64,
}

impl ServableCheckpoint {
    /// Packages a trained forecaster for publication. The registry assigns
    /// the version at publish time.
    pub fn new(task: impl Into<String>, fc: &Forecaster, adjacency: &Adjacency, seed: u64) -> Self {
        Self {
            task: task.into(),
            version: 0,
            ah: fc.ah.clone(),
            dims: fc.dims,
            adjacency: adjacency.clone(),
            params: fc.ps.snapshot(),
            seed,
        }
    }
}

/// A checkpoint rebuilt into a live, validated, evaluation-mode model — the
/// thing a [`crate::TaskLane`] worker owns and forwards through.
///
/// The model wraps a [`FrozenForecaster`]: by default forwards replay
/// compiled tape-free plans (see `octs_tensor::FrozenGraph`). A policy of
/// `None` keeps the tape engine (the benchmark baseline); `Some(precision)`
/// selects the frozen tier, with [`Precision::Int8`] gated by a load-time
/// conformance probe that falls back to [`Precision::Fused`] when the
/// quantized engine's error exceeds [`INT8_PROBE_BUDGET`].
pub struct ServableModel {
    /// Registry version this model was loaded from.
    pub version: u32,
    /// Task the model serves.
    pub task: String,
    engine: FrozenForecaster,
    frozen: bool,
}

impl ServableModel {
    /// [`ServableModel::from_checkpoint_with`] at the default serving
    /// policy, `Some(Precision::Fused)` — frozen plans, bit-identical to
    /// the tape engine.
    pub fn from_checkpoint(ckpt: ServableCheckpoint) -> Result<Self, ServeError> {
        Self::from_checkpoint_with(ckpt, Some(Precision::Fused))
    }

    /// Rebuilds and validates a model from a loaded checkpoint, serving at
    /// the requested precision policy.
    ///
    /// Validation is the poisoned-model tripwire: every stored weight must be
    /// finite and a probe forward on a fixed seeded input must produce a
    /// finite forecast. A checkpoint that fails either check is rejected with
    /// [`ServeError::Poisoned`] so the caller can keep serving the previous
    /// version.
    ///
    /// With `Some(Precision::Int8)` the probe doubles as a conformance
    /// check: the quantized engine's forecast is compared against the tape
    /// reference, and a normalized max error over [`INT8_PROBE_BUDGET`]
    /// demotes the model to [`Precision::Fused`] — counted and reported via
    /// the `serve.precision_fallback` observability hooks, never served
    /// silently wrong. The `octs_fault` site [`quant_fault_site`] can force
    /// saturating activation quantization during the probe to exercise
    /// exactly this path.
    pub fn from_checkpoint_with(
        ckpt: ServableCheckpoint,
        policy: Option<Precision>,
    ) -> Result<Self, ServeError> {
        let ServableCheckpoint { task, version, ah, dims, adjacency, params, seed } = ckpt;
        if !params.all_finite() {
            return Err(ServeError::Poisoned {
                task,
                version,
                detail: "non-finite parameter values".to_string(),
            });
        }
        let fc = Forecaster::from_trained(ah, dims, &adjacency, params, seed);
        let probe = probe_input(dims);
        let poisoned = |detail: &str| ServeError::Poisoned {
            task: task.clone(),
            version,
            detail: detail.to_string(),
        };

        let (engine, frozen) = match policy {
            None => {
                let mut engine = FrozenForecaster::new(fc, Precision::Fused);
                if !engine.tape_predict(&probe).all_finite() {
                    return Err(poisoned("probe forecast is non-finite"));
                }
                (engine, false)
            }
            Some(p @ (Precision::Full | Precision::Fused)) => {
                let mut engine = FrozenForecaster::new(fc, p);
                // Frozen Full/Fused plans are bit-identical to the tape, so
                // the frozen probe is the finite check.
                if !engine.predict(&probe).all_finite() {
                    return Err(poisoned("probe forecast is non-finite"));
                }
                (engine, true)
            }
            Some(Precision::Int8) => {
                let mut engine = FrozenForecaster::new(fc, Precision::Int8);
                let reference = engine.tape_predict(&probe);
                if !reference.all_finite() {
                    return Err(poisoned("probe forecast is non-finite"));
                }
                let site = quant_fault_site(&task);
                let inject =
                    octs_fault::quant_overflow_at(&site, (version as u64).saturating_sub(1));
                if inject {
                    octs_tensor::ops::qgemm::set_saturation_injection(true);
                }
                let quant = engine.predict(&probe);
                if inject {
                    octs_tensor::ops::qgemm::set_saturation_injection(false);
                }
                let denom = reference.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
                let err = if quant.all_finite() {
                    quant
                        .data()
                        .iter()
                        .zip(reference.data())
                        .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()))
                        / denom
                } else {
                    f32::INFINITY
                };
                if err <= INT8_PROBE_BUDGET {
                    (engine, true)
                } else {
                    // Over budget: demote to the bit-exact Fused tier. The
                    // tape reference already validated finite, and Fused
                    // plans are bit-identical to it.
                    octs_obs::counter("serve.precision_fallback", 1);
                    octs_obs::event(
                        "serve.precision_fallback",
                        version as f64,
                        &format!(
                            "{task} v{version}: int8 probe error {err:.4} over budget \
                             {INT8_PROBE_BUDGET}; serving Fused"
                        ),
                    );
                    (FrozenForecaster::new(engine.into_inner(), Precision::Fused), true)
                }
            }
        };
        Ok(Self { version, task, engine, frozen })
    }

    /// The precision tier forwards run at: `None` when the model serves from
    /// the tape engine, `Some(tier)` when it replays frozen plans. An int8
    /// load whose probe exceeded budget reports `Some(Precision::Fused)`.
    pub fn precision(&self) -> Option<Precision> {
        self.frozen.then(|| self.engine.precision())
    }

    /// The `[F, N, P]` input shape every request must carry.
    pub fn input_shape(&self) -> [usize; 3] {
        let dims = self.dims();
        [dims.f, dims.n, dims.p]
    }

    /// Shape contract of the served model.
    pub fn dims(&self) -> ModelDims {
        self.engine.forecaster().dims
    }

    /// One batched eval-mode forward: stacks `inputs` (each `[F, N, P]`)
    /// into `[B, F, N, P]`, runs a single forward — a compiled frozen plan,
    /// or the pooled-GEMM tape under the `None` policy — and demuxes the
    /// `[B, out_steps, N]` prediction back into per-request tensors.
    ///
    /// Each returned row is bit-identical to the forecast a lone
    /// single-request forward would produce: every output element is a dot
    /// product over one batch row, independent of `B` (per-row activation
    /// scales keep this true for the int8 tier as well).
    pub fn predict_batch(&mut self, inputs: &[&Tensor]) -> Vec<Tensor> {
        let x = Tensor::stack(inputs);
        let pred = if self.frozen { self.engine.predict(&x) } else { self.engine.tape_predict(&x) };
        pred.unstack()
    }
}

/// The fixed load-probe input: a seeded, sign-varying pattern (not zeros) so
/// the int8 conformance comparison exercises real activation magnitudes.
/// Deterministic across loads, platforms and thread counts.
fn probe_input(dims: ModelDims) -> Tensor {
    let len = dims.f * dims.n * dims.p;
    let mut state: u64 = 0x0C75_9B0B_E51D_2026;
    let data = (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as u32 as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
        .collect();
    Tensor::new([1, dims.f, dims.n, dims.p], data)
}

/// The post-forward half of the poisoned-model tripwire: every served
/// forecast must be finite. Returns the failure detail so the batcher can
/// reply [`ServeError::ForwardFailed`] and feed its circuit breaker.
pub fn validate_outputs(outputs: &[Tensor]) -> Result<(), String> {
    match outputs.iter().position(|t| !t.all_finite()) {
        None => Ok(()),
        Some(i) => Err(format!("non-finite forecast in batch row {i}")),
    }
}
