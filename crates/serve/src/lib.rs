//! Forecast-serving layer: the deployment half of AutoCTS+.
//!
//! Search (Algorithm 2) ends with a winning arch-hyper and trained weights;
//! this crate is what actually answers forecast requests with them, at the
//! traffic levels the ROADMAP's north star targets. Three pieces:
//!
//! - [`ModelRegistry`] — versioned on-disk storage of servable checkpoints,
//!   one directory per task, each version a checksummed [`autocts::persist`]
//!   envelope (`v00001.ckpt`, `v00002.ckpt`, …). Publishing is atomic
//!   (temp sibling + rename), so a serving process never loads a torn file.
//! - [`ForecastServer`] / [`TaskLane`] — a bounded worker-pool front-end.
//!   Each served task gets one lane: a bounded request queue plus a dedicated
//!   worker thread that owns the model exclusively (the forecaster's forward
//!   pass needs `&mut`), so many client threads submit concurrently with
//!   backpressure and no model locking.
//! - The **dynamic micro-batcher** inside each lane's worker: concurrent
//!   requests arriving within a [`BatchPolicy`] time/size window are stacked
//!   into one `[B, F, N, P]` tensor and answered by a single pooled-GEMM
//!   forward, then demuxed per request. Batched rows are bit-identical to
//!   single-request forwards (row dot products are independent of `B`), so
//!   batching is purely a throughput decision.
//!
//! Hot swap: when a new search winner is published, [`ForecastServer::reload`]
//! loads it and hands it to the lane through a swap mailbox. The worker
//! applies it at a batch boundary — in-flight requests complete on the old
//! version, later requests see the new one, and a failed or poisoned load
//! (NaN weights, corrupt envelope, injected IO fault) leaves the current
//! model serving: graceful degradation, reported via `serve.swap_failed`.
//!
//! Resilience (the overload/fault half):
//!
//! - **Admission control** — a [`ShedPolicy`] on [`BatchPolicy`] decides what
//!   a submit does when the lane queue is full: block (backpressure),
//!   reject the new request ([`ServeError::Overloaded`]), or shed the oldest
//!   queued one. [`TaskLane::try_submit`] never blocks regardless of policy.
//! - **Deadlines** — requests may carry a time-to-live; the batcher answers
//!   expired jobs [`ServeError::DeadlineExceeded`] at dequeue instead of
//!   computing forecasts nobody is waiting for, and
//!   [`PendingForecast::wait_timeout`] bounds the client-side wait.
//! - **Self-healing lanes** — every forward runs under `catch_unwind` plus a
//!   finite-output check, so a poisoned batch fails only itself
//!   ([`ServeError::ForwardFailed`]); consecutive failures trip a per-lane
//!   circuit breaker that sheds with [`ServeError::CircuitOpen`] during
//!   exponential backoff, re-loads the model from the registry
//!   (transient IO errors retried), and closes again after a successful
//!   one-request half-open probe.
//!
//! Inference backend: lanes forward through a compiled frozen engine
//! (`octs_tensor::FrozenGraph` via `octs_model::FrozenForecaster`) — the
//! [`BatchPolicy::precision`] policy picks the tier at model load. The
//! default `Some(Precision::Fused)` is bit-identical to the tape engine;
//! `Some(Precision::Int8)` additionally quantizes large weight matrices,
//! gated by a load-time conformance probe that demotes an over-budget
//! checkpoint to `Fused` (reported via `serve.precision_fallback`) rather
//! than serving silently wrong forecasts; `None` keeps the tape engine as
//! the benchmark baseline.
//!
//! Observability: `serve.queue_wait_us`, `serve.batch_size` and
//! `serve.e2e_us` histograms plus `serve.requests` / `serve.batches` /
//! `serve.shed` / `serve.deadline_expired` / `serve.breaker_open` /
//! `serve.breaker_close` / `serve.lane_restart` /
//! `serve.precision_fallback` counters flow through
//! `octs-obs` whenever a recorder is attached. Fault injection: `octs-fault`
//! hooks at the `registry.load` site cover slow and failed checkpoint loads,
//! the task-qualified `serve.forward.<task>` site covers slow, panicking
//! and NaN-emitting forwards, and the `serve.quant.<task>` site forces
//! saturating int8 probes that must trip the precision fallback.

mod batcher;
mod model;
mod registry;
mod server;

pub use batcher::{
    forward_fault_site, BatchPolicy, Forecast, PendingForecast, Reloader, ShedPolicy, TaskLane,
    FORWARD_FAULT_SITE,
};
pub use model::{
    quant_fault_site, ServableCheckpoint, ServableModel, INT8_PROBE_BUDGET, QUANT_FAULT_SITE,
    SERVABLE_VERSION,
};
pub use octs_tensor::Precision;
pub use registry::ModelRegistry;
pub use server::ForecastServer;

use autocts::CoreError;

/// What went wrong while serving.
#[derive(Debug)]
pub enum ServeError {
    /// The registry or checkpoint layer failed (IO, corruption, version).
    Core(CoreError),
    /// The task has no published checkpoint (or the requested version is
    /// absent).
    NoSuchVersion {
        /// Task the lookup was for.
        task: String,
        /// Requested registry version (0 = latest).
        version: u32,
    },
    /// A loaded checkpoint fails validation — non-finite weights or a
    /// non-finite probe forecast. Serving it would emit garbage.
    Poisoned {
        /// Task the checkpoint belongs to.
        task: String,
        /// Registry version of the poisoned checkpoint.
        version: u32,
        /// What exactly failed to validate.
        detail: String,
    },
    /// A request's input tensor does not match the served model's
    /// `[F, N, P]` contract.
    ShapeMismatch {
        /// Shape the model expects.
        expected: Vec<usize>,
        /// Shape the request carried.
        got: Vec<usize>,
    },
    /// The lane's worker is gone (server shut down while the request was
    /// queued or in flight).
    Shutdown,
    /// The lane's queue was full and the request was shed under the lane's
    /// [`ShedPolicy`] — either this request was rejected at admission, or it
    /// was the oldest queued one when a `DropOldest` lane admitted a newer
    /// request.
    Overloaded {
        /// Task whose lane shed the request.
        task: String,
        /// The lane's configured queue bound at the time.
        queue_depth: usize,
    },
    /// The request's deadline passed — either the batcher dropped it at
    /// dequeue (its time-to-live expired while queued) or
    /// [`PendingForecast::wait_timeout`] gave up waiting for the reply.
    DeadlineExceeded,
    /// The lane's circuit breaker is open: too many consecutive forwards
    /// failed, and the lane is rejecting work while it backs off, re-loads
    /// its model and probes its way back to healthy.
    CircuitOpen {
        /// Task whose lane is tripped.
        task: String,
    },
    /// The batched forward this request rode in failed — it panicked or
    /// produced non-finite output. Only the batch failed; the lane keeps
    /// serving (or trips its breaker after repeated failures).
    ForwardFailed {
        /// Task whose forward failed.
        task: String,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::NoSuchVersion { task, version: 0 } => {
                write!(f, "task {task:?} has no published checkpoint")
            }
            ServeError::NoSuchVersion { task, version } => {
                write!(f, "task {task:?} has no checkpoint version {version}")
            }
            ServeError::Poisoned { task, version, detail } => {
                write!(f, "checkpoint {task:?} v{version} is poisoned: {detail}")
            }
            ServeError::ShapeMismatch { expected, got } => {
                write!(f, "request shape {got:?} does not match model input {expected:?}")
            }
            ServeError::Shutdown => write!(f, "serving lane is shut down"),
            ServeError::Overloaded { task, queue_depth } => {
                write!(f, "task {task:?} lane is overloaded (queue depth {queue_depth})")
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::CircuitOpen { task } => {
                write!(f, "task {task:?} lane circuit breaker is open")
            }
            ServeError::ForwardFailed { task, detail } => {
                write!(f, "task {task:?} forward failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}
