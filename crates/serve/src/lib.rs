//! Forecast-serving layer: the deployment half of AutoCTS+.
//!
//! Search (Algorithm 2) ends with a winning arch-hyper and trained weights;
//! this crate is what actually answers forecast requests with them, at the
//! traffic levels the ROADMAP's north star targets. Three pieces:
//!
//! - [`ModelRegistry`] — versioned on-disk storage of servable checkpoints,
//!   one directory per task, each version a checksummed [`autocts::persist`]
//!   envelope (`v00001.ckpt`, `v00002.ckpt`, …). Publishing is atomic
//!   (temp sibling + rename), so a serving process never loads a torn file.
//! - [`ForecastServer`] / [`TaskLane`] — a bounded worker-pool front-end.
//!   Each served task gets one lane: a bounded request queue plus a dedicated
//!   worker thread that owns the model exclusively (the forecaster's forward
//!   pass needs `&mut`), so many client threads submit concurrently with
//!   backpressure and no model locking.
//! - The **dynamic micro-batcher** inside each lane's worker: concurrent
//!   requests arriving within a [`BatchPolicy`] time/size window are stacked
//!   into one `[B, F, N, P]` tensor and answered by a single pooled-GEMM
//!   forward, then demuxed per request. Batched rows are bit-identical to
//!   single-request forwards (row dot products are independent of `B`), so
//!   batching is purely a throughput decision.
//!
//! Hot swap: when a new search winner is published, [`ForecastServer::reload`]
//! loads it and hands it to the lane through a swap mailbox. The worker
//! applies it at a batch boundary — in-flight requests complete on the old
//! version, later requests see the new one, and a failed or poisoned load
//! (NaN weights, corrupt envelope, injected IO fault) leaves the current
//! model serving: graceful degradation, reported via `serve.swap_failed`.
//!
//! Observability: `serve.queue_wait_us`, `serve.batch_size` and
//! `serve.e2e_us` histograms plus `serve.requests` / `serve.batches`
//! counters flow through `octs-obs` whenever a recorder is attached. Fault
//! injection: `octs-fault` hooks at the `registry.load` site cover slow and
//! failed checkpoint loads.

mod batcher;
mod model;
mod registry;
mod server;

pub use batcher::{BatchPolicy, Forecast, PendingForecast, TaskLane};
pub use model::{ServableCheckpoint, ServableModel, SERVABLE_VERSION};
pub use registry::ModelRegistry;
pub use server::ForecastServer;

use autocts::CoreError;

/// What went wrong while serving.
#[derive(Debug)]
pub enum ServeError {
    /// The registry or checkpoint layer failed (IO, corruption, version).
    Core(CoreError),
    /// The task has no published checkpoint (or the requested version is
    /// absent).
    NoSuchVersion {
        /// Task the lookup was for.
        task: String,
        /// Requested registry version (0 = latest).
        version: u32,
    },
    /// A loaded checkpoint fails validation — non-finite weights or a
    /// non-finite probe forecast. Serving it would emit garbage.
    Poisoned {
        /// Task the checkpoint belongs to.
        task: String,
        /// Registry version of the poisoned checkpoint.
        version: u32,
        /// What exactly failed to validate.
        detail: String,
    },
    /// A request's input tensor does not match the served model's
    /// `[F, N, P]` contract.
    ShapeMismatch {
        /// Shape the model expects.
        expected: Vec<usize>,
        /// Shape the request carried.
        got: Vec<usize>,
    },
    /// The lane's worker is gone (server shut down while the request was
    /// queued or in flight).
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::NoSuchVersion { task, version: 0 } => {
                write!(f, "task {task:?} has no published checkpoint")
            }
            ServeError::NoSuchVersion { task, version } => {
                write!(f, "task {task:?} has no checkpoint version {version}")
            }
            ServeError::Poisoned { task, version, detail } => {
                write!(f, "checkpoint {task:?} v{version} is poisoned: {detail}")
            }
            ServeError::ShapeMismatch { expected, got } => {
                write!(f, "request shape {got:?} does not match model input {expected:?}")
            }
            ServeError::Shutdown => write!(f, "serving lane is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}
