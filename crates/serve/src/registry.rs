//! The model registry: versioned servable checkpoints on disk.
//!
//! Layout: one directory per task under the registry root, one envelope file
//! per published version:
//!
//! ```text
//! <root>/<task>/v00001.ckpt
//! <root>/<task>/v00002.ckpt
//! ```
//!
//! Each file is a checksummed, versioned [`autocts::persist`] envelope
//! written atomically, so publish-while-serving never exposes a torn
//! checkpoint and every corruption mode maps to a typed
//! [`autocts::CoreError`]. Loads pass through the `octs-fault`
//! `registry.load` site (ordinal = load count), which is where the
//! slow-disk and failed-load scenarios are injected under test.

use crate::model::{ServableCheckpoint, SERVABLE_VERSION};
use crate::ServeError;
use autocts::{persist, CoreError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The fault-injection site name for checkpoint loads.
pub const LOAD_FAULT_SITE: &str = "registry.load";

/// A directory of versioned servable checkpoints, one subdirectory per task.
pub struct ModelRegistry {
    root: PathBuf,
    loads: AtomicU64,
}

impl ModelRegistry {
    /// Opens (creating if needed) a registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, CoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| CoreError::io(&root, "create_dir", e))?;
        Ok(Self { root, loads: AtomicU64::new(0) })
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn task_dir(&self, task: &str) -> PathBuf {
        self.root.join(task)
    }

    fn version_path(&self, task: &str, version: u32) -> PathBuf {
        self.task_dir(task).join(format!("v{version:05}.ckpt"))
    }

    /// Published versions of `task` in ascending order (empty when the task
    /// is unknown). Unparseable filenames are ignored rather than trusted.
    pub fn versions(&self, task: &str) -> Vec<u32> {
        let Ok(entries) = std::fs::read_dir(self.task_dir(task)) else {
            return Vec::new();
        };
        let mut out: Vec<u32> = entries
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                name.strip_prefix('v')?.strip_suffix(".ckpt")?.parse().ok()
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// The newest published version of `task`, if any.
    pub fn latest(&self, task: &str) -> Option<u32> {
        self.versions(task).last().copied()
    }

    /// Atomically publishes `ckpt` as the next version of its task,
    /// assigning and returning the version number. Readers concurrently
    /// loading see either the previous version set or the new one — never a
    /// partial file.
    pub fn publish(&self, ckpt: &mut ServableCheckpoint) -> Result<u32, CoreError> {
        let _span = octs_obs::span("serve.registry.publish");
        let dir = self.task_dir(&ckpt.task);
        std::fs::create_dir_all(&dir).map_err(|e| CoreError::io(&dir, "create_dir", e))?;
        let version = self.latest(&ckpt.task).unwrap_or(0) + 1;
        ckpt.version = version;
        let path = self.version_path(&ckpt.task, version);
        let json = serde_json::to_string(&*ckpt)
            .map_err(|e| CoreError::corrupt(&path, format!("checkpoint serialization: {e}")))?;
        persist::write_envelope(&path, SERVABLE_VERSION, &json)?;
        Ok(version)
    }

    /// Loads one published version, validating the envelope (magic, schema
    /// version, length, checksum) before deserializing, and cross-checking
    /// that the payload agrees with the filename it sits under.
    pub fn load(&self, task: &str, version: u32) -> Result<ServableCheckpoint, ServeError> {
        let _span = octs_obs::span("serve.registry.load");
        let op = self.loads.fetch_add(1, Ordering::Relaxed);
        octs_fault::io_delay(LOAD_FAULT_SITE, op);
        let path = self.version_path(task, version);
        if !path.exists() {
            return Err(ServeError::NoSuchVersion { task: task.to_string(), version });
        }
        octs_fault::io_fault(LOAD_FAULT_SITE, op).map_err(|e| CoreError::io(&path, "read", e))?;
        let json = persist::read_envelope(&path, SERVABLE_VERSION)?;
        let ckpt: ServableCheckpoint = serde_json::from_str(&json).map_err(|e| {
            CoreError::corrupt(&path, format!("unparseable checkpoint payload: {e}"))
        })?;
        if ckpt.task != task || ckpt.version != version {
            return Err(ServeError::Core(CoreError::corrupt(
                &path,
                format!(
                    "payload claims {}/v{}, file is {task}/v{version}",
                    ckpt.task, ckpt.version
                ),
            )));
        }
        Ok(ckpt)
    }

    /// Loads the newest published version of `task`.
    pub fn load_latest(&self, task: &str) -> Result<ServableCheckpoint, ServeError> {
        let version = self
            .latest(task)
            .ok_or_else(|| ServeError::NoSuchVersion { task: task.to_string(), version: 0 })?;
        self.load(task, version)
    }

    /// [`ModelRegistry::load_latest`] with retry-with-backoff on transient
    /// IO failures (the `io_error` class a flaky disk — or the `octs-fault`
    /// `registry.load` site — produces). Up to `attempts` tries, waiting
    /// `backoff` then doubling between them; any non-IO error (missing
    /// version, corrupt envelope, poisoned payload) fails immediately. This
    /// is the load path a lane's circuit breaker heals through.
    pub fn load_latest_retry(
        &self,
        task: &str,
        attempts: usize,
        mut backoff: std::time::Duration,
    ) -> Result<ServableCheckpoint, ServeError> {
        let mut tries = 0;
        loop {
            tries += 1;
            match self.load_latest(task) {
                Err(ServeError::Core(CoreError::Io { .. })) if tries < attempts.max(1) => {
                    octs_obs::counter("serve.reload_retry", 1);
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                other => return other,
            }
        }
    }
}
