//! The multi-task front door: routes requests to per-task lanes and drives
//! registry reloads with graceful degradation.

use crate::batcher::{BatchPolicy, Forecast, PendingForecast, TaskLane};
use crate::model::ServableModel;
use crate::registry::ModelRegistry;
use crate::ServeError;
use octs_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Serves forecasts for many tasks concurrently, one [`TaskLane`] per task,
/// all backed by one [`ModelRegistry`].
pub struct ForecastServer {
    registry: ModelRegistry,
    policy: BatchPolicy,
    lanes: Mutex<BTreeMap<String, Arc<TaskLane>>>,
}

impl ForecastServer {
    /// A server answering from `registry` with `policy` on every lane.
    pub fn new(registry: ModelRegistry, policy: BatchPolicy) -> Self {
        Self { registry, policy, lanes: Mutex::new(BTreeMap::new()) }
    }

    /// The backing registry (e.g. for publishing new versions in tests).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Starts serving `task` from its latest published checkpoint. A task
    /// already being served is left untouched (use [`ForecastServer::reload`]
    /// to pick up a newer version).
    pub fn serve_task(&self, task: &str) -> Result<u32, ServeError> {
        let mut lanes = self.lanes.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(lane) = lanes.get(task) {
            return Ok(lane.version());
        }
        let model = ServableModel::from_checkpoint(self.registry.load_latest(task)?)?;
        let version = model.version;
        lanes.insert(task.to_string(), Arc::new(TaskLane::spawn(model, self.policy)));
        Ok(version)
    }

    /// Tasks currently being served.
    pub fn tasks(&self) -> Vec<String> {
        self.lanes.lock().unwrap_or_else(|e| e.into_inner()).keys().cloned().collect()
    }

    /// Registry version `task` is serving, if it is being served.
    pub fn version(&self, task: &str) -> Option<u32> {
        self.lane(task).map(|l| l.version())
    }

    fn lane(&self, task: &str) -> Option<Arc<TaskLane>> {
        self.lanes.lock().unwrap_or_else(|e| e.into_inner()).get(task).cloned()
    }

    /// Reloads `task` from the registry's latest checkpoint and hot-swaps it
    /// into the lane.
    ///
    /// Graceful degradation: when the load or validation fails — corrupt
    /// envelope, injected IO fault, poisoned weights — the lane keeps
    /// serving its current version, a `serve.swap_failed` event is emitted,
    /// and the error is returned for the operator to act on.
    pub fn reload(&self, task: &str) -> Result<u32, ServeError> {
        let lane = self
            .lane(task)
            .ok_or_else(|| ServeError::NoSuchVersion { task: task.to_string(), version: 0 })?;
        let model =
            self.registry.load_latest(task).and_then(ServableModel::from_checkpoint).inspect_err(
                |e| {
                    octs_obs::event("serve.swap_failed", lane.version() as f64, &e.to_string());
                },
            )?;
        let version = model.version;
        lane.swap(model);
        Ok(version)
    }

    /// Submits a forecast request for `task` (`input` is `[F, N, P]`) and
    /// blocks for the result.
    pub fn submit(&self, task: &str, input: Tensor) -> Result<Forecast, ServeError> {
        self.submit_async(task, input)?.wait()
    }

    /// Submits a forecast request without waiting for the result. Blocks
    /// only when the task's queue is full (backpressure).
    pub fn submit_async(&self, task: &str, input: Tensor) -> Result<PendingForecast, ServeError> {
        let lane = self
            .lane(task)
            .ok_or_else(|| ServeError::NoSuchVersion { task: task.to_string(), version: 0 })?;
        Ok(lane.submit_async(input))
    }

    /// Stops all lanes, waiting for queued requests to drain.
    pub fn shutdown(self) {
        // Lanes join their workers on drop.
    }
}
