//! The multi-task front door: routes requests to per-task lanes and drives
//! registry reloads with graceful degradation.

use crate::batcher::{BatchPolicy, Forecast, PendingForecast, Reloader, TaskLane};
use crate::model::ServableModel;
use crate::registry::ModelRegistry;
use crate::ServeError;
use octs_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Serves forecasts for many tasks concurrently, one [`TaskLane`] per task,
/// all backed by one [`ModelRegistry`]. The registry is shared with every
/// lane's circuit breaker, which heals by re-loading the task's latest
/// checkpoint (with retry on transient IO failures).
pub struct ForecastServer {
    registry: Arc<ModelRegistry>,
    policy: BatchPolicy,
    lanes: Mutex<BTreeMap<String, Arc<TaskLane>>>,
}

impl ForecastServer {
    /// A server answering from `registry` with `policy` on every lane.
    pub fn new(registry: ModelRegistry, policy: BatchPolicy) -> Self {
        Self { registry: Arc::new(registry), policy, lanes: Mutex::new(BTreeMap::new()) }
    }

    /// The backing registry (e.g. for publishing new versions in tests).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Starts serving `task` from its latest published checkpoint. A task
    /// already being served is left untouched (use [`ForecastServer::reload`]
    /// to pick up a newer version).
    pub fn serve_task(&self, task: &str) -> Result<u32, ServeError> {
        let mut lanes = self.lanes.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(lane) = lanes.get(task) {
            return Ok(lane.version());
        }
        let model = ServableModel::from_checkpoint_with(
            self.registry.load_latest(task)?,
            self.policy.precision,
        )?;
        let version = model.version;
        let reloader = self.reloader(task);
        lanes.insert(
            task.to_string(),
            Arc::new(TaskLane::spawn_with_reloader(model, self.policy, Some(reloader))),
        );
        Ok(version)
    }

    /// The heal path a lane's circuit breaker uses: re-load the task's
    /// latest checkpoint, retrying transient IO failures with backoff.
    fn reloader(&self, task: &str) -> Reloader {
        let registry = Arc::clone(&self.registry);
        let task = task.to_string();
        let attempts = self.policy.reload_retries;
        let backoff = self.policy.reload_backoff;
        let precision = self.policy.precision;
        Arc::new(move || {
            registry
                .load_latest_retry(&task, attempts, backoff)
                .and_then(|ckpt| ServableModel::from_checkpoint_with(ckpt, precision))
        })
    }

    /// Tasks currently being served.
    pub fn tasks(&self) -> Vec<String> {
        self.lanes.lock().unwrap_or_else(|e| e.into_inner()).keys().cloned().collect()
    }

    /// Registry version `task` is serving, if it is being served.
    pub fn version(&self, task: &str) -> Option<u32> {
        self.lane(task).map(|l| l.version())
    }

    fn lane(&self, task: &str) -> Option<Arc<TaskLane>> {
        self.lanes.lock().unwrap_or_else(|e| e.into_inner()).get(task).cloned()
    }

    fn lane_or_err(&self, task: &str) -> Result<Arc<TaskLane>, ServeError> {
        self.lane(task)
            .ok_or_else(|| ServeError::NoSuchVersion { task: task.to_string(), version: 0 })
    }

    /// Reloads `task` from the registry's latest checkpoint and hot-swaps it
    /// into the lane.
    ///
    /// Graceful degradation: when the load or validation fails — corrupt
    /// envelope, injected IO fault, poisoned weights — the lane keeps
    /// serving its current version, a `serve.swap_failed` event is emitted,
    /// and the error is returned for the operator to act on.
    pub fn reload(&self, task: &str) -> Result<u32, ServeError> {
        let lane = self.lane_or_err(task)?;
        let model = self
            .registry
            .load_latest(task)
            .and_then(|ckpt| ServableModel::from_checkpoint_with(ckpt, self.policy.precision))
            .inspect_err(|e| {
                octs_obs::event("serve.swap_failed", lane.version() as f64, &e.to_string());
            })?;
        let version = model.version;
        lane.swap(model);
        Ok(version)
    }

    /// Submits a forecast request for `task` (`input` is `[F, N, P]`) and
    /// blocks for the result.
    pub fn submit(&self, task: &str, input: Tensor) -> Result<Forecast, ServeError> {
        self.submit_async(task, input)?.wait()
    }

    /// Submits a forecast request without waiting for the result. When the
    /// task's queue is full the lane's [`crate::ShedPolicy`] decides: block
    /// for space (`Block`, the default), resolve the handle to
    /// [`ServeError::Overloaded`] (`RejectWhenFull`), or shed the oldest
    /// queued request (`DropOldest`).
    pub fn submit_async(&self, task: &str, input: Tensor) -> Result<PendingForecast, ServeError> {
        Ok(self.lane_or_err(task)?.submit_async(input))
    }

    /// [`ForecastServer::submit_async`] with a dequeue deadline of `ttl`
    /// from now: a request still queued past it is answered
    /// [`ServeError::DeadlineExceeded`] instead of being computed.
    pub fn submit_async_deadline(
        &self,
        task: &str,
        input: Tensor,
        ttl: Duration,
    ) -> Result<PendingForecast, ServeError> {
        Ok(self.lane_or_err(task)?.submit_async_deadline(input, ttl))
    }

    /// Admission-controlled submit that never blocks: a full queue rejects
    /// with [`ServeError::Overloaded`] even under the `Block` policy.
    pub fn try_submit(&self, task: &str, input: Tensor) -> Result<PendingForecast, ServeError> {
        self.lane_or_err(task)?.try_submit(input)
    }

    /// [`ForecastServer::try_submit`] with a dequeue deadline of `ttl` from
    /// now.
    pub fn try_submit_deadline(
        &self,
        task: &str,
        input: Tensor,
        ttl: Duration,
    ) -> Result<PendingForecast, ServeError> {
        self.lane_or_err(task)?.try_submit_deadline(input, ttl)
    }

    /// Stops accepting new requests on every lane: queued requests still
    /// drain, later submits fail promptly with [`ServeError::Shutdown`].
    /// Unlike [`ForecastServer::shutdown`] this does not consume the server,
    /// so outstanding [`PendingForecast`] handles can still be waited on.
    pub fn stop(&self) {
        for lane in self.lanes.lock().unwrap_or_else(|e| e.into_inner()).values() {
            lane.close();
        }
    }

    /// Stops all lanes, waiting for queued requests to drain.
    pub fn shutdown(self) {
        // Lanes join their workers on drop.
    }
}
