//! End-to-end serving tests: registry lifecycle, micro-batcher equivalence,
//! hot swap under concurrent load, and fault-injected degradation.

use octs_data::Adjacency;
use octs_fault::{FaultPlan, FaultScope};
use octs_model::{Forecaster, ModelDims};
use octs_serve::{
    BatchPolicy, ForecastServer, ModelRegistry, ServableCheckpoint, ServableModel, ServeError,
};
use octs_space::JointSpace;
use octs_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const N: usize = 4;
const F: usize = 2;
const P: usize = 12;

fn dims() -> ModelDims {
    ModelDims { n: N, f: F, p: P, out_steps: 3 }
}

/// A forecaster with materialized (randomly initialized) weights — training
/// quality is irrelevant to serving mechanics; determinism per seed is what
/// the tests lean on.
fn fixture_forecaster(weight_seed: u64) -> (Forecaster, Adjacency) {
    let space = JointSpace::tiny();
    // Same arch for every fixture; only the weights vary with weight_seed.
    let ah = space.sample(&mut ChaCha8Rng::seed_from_u64(7));
    let adj = Adjacency::identity(N);
    let mut fc = Forecaster::new(ah, dims(), &adj, weight_seed);
    fc.training = false;
    fc.predict(&Tensor::zeros([1, F, N, P])); // materialize all parameters
    (fc, adj)
}

/// Deterministic pseudo-random `[F, N, P]` request input, distinct per tag.
fn probe_input(tag: u64) -> Tensor {
    let len = F * N * P;
    let data: Vec<f32> = (0..len)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(tag);
            ((h >> 33) % 2000) as f32 / 1000.0 - 1.0
        })
        .collect();
    Tensor::new([F, N, P], data)
}

fn tmp_registry(name: &str) -> ModelRegistry {
    let dir = std::env::temp_dir().join(format!("octs_serve_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    ModelRegistry::open(dir).unwrap()
}

fn publish(reg: &ModelRegistry, task: &str, weight_seed: u64) -> u32 {
    let (fc, adj) = fixture_forecaster(weight_seed);
    let mut ckpt = ServableCheckpoint::new(task, &fc, &adj, weight_seed);
    reg.publish(&mut ckpt).unwrap()
}

/// Expected single-request forecast of the checkpoint at `version`.
fn expected_for(reg: &ModelRegistry, task: &str, version: u32, input: &Tensor) -> Tensor {
    let mut m = ServableModel::from_checkpoint(reg.load(task, version).unwrap()).unwrap();
    m.predict_batch(&[input]).remove(0)
}

#[test]
fn registry_publish_load_roundtrip() {
    let reg = tmp_registry("roundtrip");
    assert!(reg.versions("metr").is_empty());
    assert_eq!(publish(&reg, "metr", 1), 1);
    assert_eq!(publish(&reg, "metr", 2), 2);
    assert_eq!(publish(&reg, "pems", 3), 1, "versions are per task");
    assert_eq!(reg.versions("metr"), vec![1, 2]);
    assert_eq!(reg.latest("metr"), Some(2));

    let ckpt = reg.load("metr", 1).unwrap();
    assert_eq!(ckpt.task, "metr");
    assert_eq!(ckpt.version, 1);
    assert!(ckpt.params.all_finite());

    match reg.load("metr", 9) {
        Err(ServeError::NoSuchVersion { version: 9, .. }) => {}
        other => panic!("want NoSuchVersion, got {other:?}", other = other.err()),
    }
    std::fs::remove_dir_all(reg.root()).ok();
}

#[test]
fn corrupt_checkpoint_is_rejected_typed() {
    let reg = tmp_registry("corrupt");
    publish(&reg, "t", 1);
    let path = reg.root().join("t").join("v00001.ckpt");
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 3] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();
    match reg.load("t", 1) {
        Err(ServeError::Core(autocts::CoreError::Corrupt { .. })) => {}
        other => panic!("want Corrupt, got {other:?}", other = other.err()),
    }
    std::fs::remove_dir_all(reg.root()).ok();
}

#[test]
fn poisoned_checkpoint_is_rejected() {
    let (fc, adj) = fixture_forecaster(1);
    let name = fc.ps.names().into_iter().next().unwrap();
    let shape = fc.ps.get(&name).unwrap().shape().to_vec();
    let mut ckpt = ServableCheckpoint::new("t", &fc, &adj, 1);
    ckpt.version = 1;
    ckpt.params.set(&name, Tensor::full(shape, f32::NAN));
    match ServableModel::from_checkpoint(ckpt) {
        Err(ServeError::Poisoned { version: 1, .. }) => {}
        other => panic!("want Poisoned, got {:?}", other.err()),
    }
}

#[test]
fn batched_rows_match_single_request_forwards_bitwise() {
    let reg = tmp_registry("bitwise");
    publish(&reg, "t", 1);
    let mut m = ServableModel::from_checkpoint(reg.load("t", 1).unwrap()).unwrap();

    let inputs: Vec<Tensor> = (0..6).map(probe_input).collect();
    let refs: Vec<&Tensor> = inputs.iter().collect();
    let batched = m.predict_batch(&refs);
    for (i, input) in inputs.iter().enumerate() {
        let single = m.predict_batch(&[input]).remove(0);
        assert_eq!(batched[i].shape(), &[dims().out_steps, N]);
        assert_eq!(batched[i].data(), single.data(), "row {i} must be bit-identical");
    }
    std::fs::remove_dir_all(reg.root()).ok();
}

#[test]
fn concurrent_submits_are_batched_and_correct() {
    let reg = tmp_registry("concurrent");
    publish(&reg, "t", 1);
    let expected: Vec<Tensor> =
        (0..8).map(|i| expected_for(&reg, "t", 1, &probe_input(i))).collect();

    let rec = octs_obs::Recorder::new();
    {
        let _obs = octs_obs::ObsScope::activate(&rec);
        let server = ForecastServer::new(reg, BatchPolicy::default());
        server.serve_task("t").unwrap();
        let server = Arc::new(server);

        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut out = Vec::new();
                    for _ in 0..5 {
                        out.push(server.submit("t", probe_input(i)).unwrap());
                    }
                    (i, out)
                })
            })
            .collect();
        for h in handles {
            let (i, forecasts) = h.join().unwrap();
            for fc in forecasts {
                assert_eq!(fc.version, 1);
                assert_eq!(fc.values.data(), expected[i as usize].data());
            }
        }
        std::fs::remove_dir_all(server.registry().root()).ok();
    }

    let s = rec.summary();
    assert_eq!(s.counter("serve.requests"), 40);
    let batches = s.counter("serve.batches");
    assert!((1..=40).contains(&batches));
    let bs = s.histograms.iter().find(|h| h.name == "serve.batch_size").unwrap();
    assert_eq!(bs.count, batches);
    assert!(s.histograms.iter().any(|h| h.name == "serve.queue_wait_us"));
    assert!(s.histograms.iter().any(|h| h.name == "serve.e2e_us"));
}

/// Satellite: hot swap under concurrent load. Responses must always match
/// the prediction of the version they claim (no torn reads), versions are
/// monotone per client, and the phase structure pins down which version each
/// phase observes.
#[test]
fn hot_swap_under_concurrent_load_has_no_torn_reads() {
    const CLIENTS: u64 = 6;
    const PER_PHASE: usize = 4;

    let reg = tmp_registry("hotswap");
    publish(&reg, "t", 1);
    publish(&reg, "t", 2);
    // Per-client expected outputs for both versions.
    let exp_v1: Vec<Tensor> =
        (0..CLIENTS).map(|i| expected_for(&reg, "t", 1, &probe_input(i))).collect();
    let exp_v2: Vec<Tensor> =
        (0..CLIENTS).map(|i| expected_for(&reg, "t", 2, &probe_input(i))).collect();
    for (a, b) in exp_v1.iter().zip(&exp_v2) {
        assert_ne!(a.data(), b.data(), "fixture versions must predict differently");
    }

    // Weight seeds alternate by version parity: odd versions carry seed-1
    // weights (payload exp_v1), even versions seed-2 (payload exp_v2).
    let server = Arc::new(ForecastServer::new(reg, BatchPolicy::default()));
    assert_eq!(server.serve_task("t").unwrap(), 2);

    let phase_gate = Arc::new(Barrier::new(CLIENTS as usize + 1));
    let swaps = Arc::new(AtomicU32::new(2)); // version clients expect this phase

    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let server = Arc::clone(&server);
            let phase_gate = Arc::clone(&phase_gate);
            let swaps = Arc::clone(&swaps);
            let exp_v1 = exp_v1[i as usize].clone();
            let exp_v2 = exp_v2[i as usize].clone();
            std::thread::spawn(move || {
                let mut last_version = 0u32;
                for _phase in 0..3 {
                    phase_gate.wait(); // wait for the publisher to set the phase version
                    let want = swaps.load(Ordering::SeqCst);
                    for _ in 0..PER_PHASE {
                        let fc = server.submit("t", probe_input(i)).unwrap();
                        // No torn reads: payload matches the claimed version.
                        let expected =
                            if fc.version % 2 == 1 { exp_v1.data() } else { exp_v2.data() };
                        assert_eq!(fc.values.data(), expected, "response matches its version");
                        assert!(fc.version >= last_version, "version not monotone");
                        assert_eq!(fc.version, want, "phase serves the phase version");
                        last_version = fc.version;
                    }
                    phase_gate.wait(); // phase drained
                }
            })
        })
        .collect();

    phase_gate.wait(); // phase 1 under v2
    phase_gate.wait();

    // Publish v3 (seed-1 weights) and reload: all phase-2 requests must see
    // v3, whose payload equals exp_v1.
    let v3 = publish(server.registry(), "t", 1);
    assert_eq!(v3, 3);
    swaps.store(3, Ordering::SeqCst);
    assert_eq!(server.reload("t").unwrap(), 3);
    phase_gate.wait(); // phase 2 under v3
    phase_gate.wait();

    let v4 = publish(server.registry(), "t", 2);
    assert_eq!(v4, 4);
    swaps.store(4, Ordering::SeqCst);
    assert_eq!(server.reload("t").unwrap(), 4);
    phase_gate.wait(); // phase 3 under v4
    phase_gate.wait();

    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn failed_reload_degrades_gracefully_to_current_version() {
    let reg = tmp_registry("degrade");
    publish(&reg, "t", 1);
    // Compute the expectation through a separate registry handle so the
    // server's per-handle load ordinals stay predictable for fault targeting.
    let reg2 = ModelRegistry::open(reg.root()).unwrap();
    let expected = expected_for(&reg2, "t", 1, &probe_input(0));

    let rec = octs_obs::Recorder::new();
    let _obs = octs_obs::ObsScope::activate(&rec);
    let server = ForecastServer::new(reg, BatchPolicy::default());
    server.serve_task("t").unwrap(); // the server handle's load op 0

    publish(server.registry(), "t", 2);

    // The server's next load (op 1) fails with an injected IO error.
    let plan = FaultPlan::new().io_error("registry.load", 1);
    {
        let _fault = FaultScope::activate(plan);
        match server.reload("t") {
            Err(ServeError::Core(autocts::CoreError::Io { op: "read", .. })) => {}
            other => panic!("want injected Io error, got {:?}", other.err()),
        }
    }

    // Still serving v1, correctly.
    assert_eq!(server.version("t"), Some(1));
    let fc = server.submit("t", probe_input(0)).unwrap();
    assert_eq!(fc.version, 1);
    assert_eq!(fc.values.data(), expected.data());

    // After the fault window, the same reload succeeds.
    assert_eq!(server.reload("t").unwrap(), 2);
    drop(_obs);
    assert_eq!(rec.summary().events.get("serve.swap_failed"), Some(&1));
    std::fs::remove_dir_all(server.registry().root()).ok();
}

#[test]
fn poisoned_reload_keeps_previous_version_serving() {
    let reg = tmp_registry("poison");
    publish(&reg, "t", 1);
    let server = ForecastServer::new(reg, BatchPolicy::default());
    server.serve_task("t").unwrap();

    // Publish a v2 whose weights are NaN.
    let (fc, adj) = fixture_forecaster(2);
    let name = fc.ps.names().into_iter().next().unwrap();
    let shape = fc.ps.get(&name).unwrap().shape().to_vec();
    let mut ckpt = ServableCheckpoint::new("t", &fc, &adj, 2);
    ckpt.params.set(&name, Tensor::full(shape, f32::NAN));
    server.registry().publish(&mut ckpt).unwrap();

    match server.reload("t") {
        Err(ServeError::Poisoned { version: 2, .. }) => {}
        other => panic!("want Poisoned, got {:?}", other.err()),
    }
    assert_eq!(server.version("t"), Some(1));
    assert!(server.submit("t", probe_input(0)).is_ok());
    std::fs::remove_dir_all(server.registry().root()).ok();
}

#[test]
fn slow_checkpoint_load_is_injectable() {
    let reg = tmp_registry("slow");
    publish(&reg, "t", 1);
    let plan = FaultPlan::new().slow_io("registry.load", 0, 40);
    let _fault = FaultScope::activate(plan);
    let t0 = Instant::now();
    let server = ForecastServer::new(reg, BatchPolicy::default());
    server.serve_task("t").unwrap();
    assert!(t0.elapsed() >= Duration::from_millis(40), "injected delay must be observable");
    assert!(server.submit("t", probe_input(0)).is_ok());
    std::fs::remove_dir_all(server.registry().root()).ok();
}

#[test]
fn shape_mismatch_is_rejected_per_request() {
    let reg = tmp_registry("shape");
    publish(&reg, "t", 1);
    let server = ForecastServer::new(reg, BatchPolicy::default());
    server.serve_task("t").unwrap();
    match server.submit("t", Tensor::zeros([1, 2, 3])) {
        Err(ServeError::ShapeMismatch { expected, got }) => {
            assert_eq!(expected, vec![F, N, P]);
            assert_eq!(got, vec![1, 2, 3]);
        }
        other => panic!("want ShapeMismatch, got {:?}", other.err()),
    }
    // The lane survives and keeps serving valid requests.
    assert!(server.submit("t", probe_input(0)).is_ok());
    std::fs::remove_dir_all(server.registry().root()).ok();
}

#[test]
fn unknown_task_and_empty_registry_are_typed_errors() {
    let reg = tmp_registry("unknown");
    let server = ForecastServer::new(reg, BatchPolicy::default());
    match server.serve_task("nope") {
        Err(ServeError::NoSuchVersion { version: 0, .. }) => {}
        other => panic!("want NoSuchVersion, got {:?}", other.err()),
    }
    match server.submit("nope", probe_input(0)) {
        Err(ServeError::NoSuchVersion { .. }) => {}
        other => panic!("want NoSuchVersion, got {:?}", other.err()),
    }
    std::fs::remove_dir_all(server.registry().root()).ok();
}

#[test]
fn shutdown_drains_pending_requests() {
    let reg = tmp_registry("drain");
    publish(&reg, "t", 1);
    let server = ForecastServer::new(reg, BatchPolicy::default());
    server.serve_task("t").unwrap();
    let pendings: Vec<_> =
        (0..16).map(|i| server.submit_async("t", probe_input(i)).unwrap()).collect();
    let root = server.registry().root().to_path_buf();
    server.shutdown(); // joins the worker after the queue drains
    for p in pendings {
        assert!(p.wait().is_ok(), "queued requests complete during shutdown");
    }
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn unbatched_policy_never_coalesces() {
    let reg = tmp_registry("unbatched");
    publish(&reg, "t", 1);
    let rec = octs_obs::Recorder::new();
    {
        let _obs = octs_obs::ObsScope::activate(&rec);
        let server = Arc::new(ForecastServer::new(reg, BatchPolicy::unbatched()));
        server.serve_task("t").unwrap();
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    for _ in 0..3 {
                        server.submit("t", probe_input(i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_dir_all(server.registry().root()).ok();
    }
    let s = rec.summary();
    assert_eq!(s.counter("serve.requests"), 12);
    assert_eq!(s.counter("serve.batches"), 12, "max_batch=1 forwards one request at a time");
    let bs = s.histograms.iter().find(|h| h.name == "serve.batch_size").unwrap();
    assert_eq!(bs.max, 1.0);
}
