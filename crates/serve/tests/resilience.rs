//! Resilience tests: admission control and shedding, per-request deadlines,
//! panic/NaN isolation, the per-lane circuit breaker, heal-path retry, and
//! the shutdown/drop regressions.
//!
//! Fault sites are task-qualified (`serve.forward.<task>`) and every test
//! uses a distinct task name, so armed plans never leak across tests even
//! though the fault hooks are process-global.

use octs_data::Adjacency;
use octs_fault::{FaultPlan, FaultScope};
use octs_model::{Forecaster, ModelDims};
use octs_serve::{
    forward_fault_site, BatchPolicy, ForecastServer, ModelRegistry, ServableCheckpoint,
    ServableModel, ServeError, ShedPolicy, TaskLane,
};
use octs_space::JointSpace;
use octs_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 4;
const F: usize = 2;
const P: usize = 12;

fn dims() -> ModelDims {
    ModelDims { n: N, f: F, p: P, out_steps: 3 }
}

fn fixture_forecaster(weight_seed: u64) -> (Forecaster, Adjacency) {
    let space = JointSpace::tiny();
    let ah = space.sample(&mut ChaCha8Rng::seed_from_u64(7));
    let adj = Adjacency::identity(N);
    let mut fc = Forecaster::new(ah, dims(), &adj, weight_seed);
    fc.training = false;
    fc.predict(&Tensor::zeros([1, F, N, P]));
    (fc, adj)
}

fn probe_input(tag: u64) -> Tensor {
    let len = F * N * P;
    let data: Vec<f32> = (0..len)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(tag);
            ((h >> 33) % 2000) as f32 / 1000.0 - 1.0
        })
        .collect();
    Tensor::new([F, N, P], data)
}

fn tmp_registry(name: &str) -> ModelRegistry {
    let dir = std::env::temp_dir().join(format!("octs_resil_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    ModelRegistry::open(dir).unwrap()
}

fn publish(reg: &ModelRegistry, task: &str, weight_seed: u64) -> u32 {
    let (fc, adj) = fixture_forecaster(weight_seed);
    let mut ckpt = ServableCheckpoint::new(task, &fc, &adj, weight_seed);
    reg.publish(&mut ckpt).unwrap()
}

/// A lane serving `task`'s latest checkpoint directly (no server front end),
/// plus the registry it came from.
fn lane_for(task: &str, policy: BatchPolicy) -> (TaskLane, ModelRegistry) {
    let reg = tmp_registry(task);
    publish(&reg, task, 1);
    let model = ServableModel::from_checkpoint(reg.load_latest(task).unwrap()).unwrap();
    (TaskLane::spawn(model, policy), reg)
}

/// Serial policy (one request per forward, no straggler window) so tests can
/// reason about forward ordinals one submit at a time.
fn serial(shed: ShedPolicy, queue_depth: usize) -> BatchPolicy {
    BatchPolicy {
        max_batch: 1,
        max_delay: Duration::ZERO,
        queue_depth,
        shed,
        ..BatchPolicy::default()
    }
}

/// Stalls the lane's first forward long enough to fill the queue behind it.
fn stall_first_forward(task: &str, millis: u64) -> FaultPlan {
    FaultPlan::new().slow_io(&forward_fault_site(task), 0, millis)
}

#[test]
fn reject_when_full_sheds_typed_and_never_blocks() {
    let task = "rej";
    let rec = octs_obs::Recorder::new();
    {
        let _obs = octs_obs::ObsScope::activate(&rec);
        let _fault = FaultScope::activate(stall_first_forward(task, 200));
        let (lane, reg) = lane_for(task, serial(ShedPolicy::RejectWhenFull, 2));

        let p0 = lane.submit_async(probe_input(0)); // dequeued, stalls in forward
        std::thread::sleep(Duration::from_millis(50));
        let p1 = lane.submit_async(probe_input(1));
        let p2 = lane.submit_async(probe_input(2)); // queue now full

        // submit_async resolves the handle to a typed rejection…
        let p3 = lane.submit_async(probe_input(3));
        match p3.wait() {
            Err(ServeError::Overloaded { task: t, queue_depth: 2 }) => assert_eq!(t, task),
            other => panic!("want Overloaded, got {:?}", other.err()),
        }
        // …and try_submit rejects as a plain Err, without blocking.
        let t0 = Instant::now();
        match lane.try_submit(probe_input(4)) {
            Err(ServeError::Overloaded { .. }) => {}
            other => panic!("want Overloaded, got {:?}", other.err()),
        }
        assert!(t0.elapsed() < Duration::from_millis(100), "try_submit must not block");

        // Admitted requests all complete.
        for p in [p0, p1, p2] {
            assert!(p.wait().is_ok());
        }
        std::fs::remove_dir_all(reg.root()).ok();
    }
    assert_eq!(rec.summary().counter("serve.shed"), 2);
}

#[test]
fn drop_oldest_sheds_the_oldest_queued_request() {
    let task = "dropold";
    let rec = octs_obs::Recorder::new();
    {
        let _obs = octs_obs::ObsScope::activate(&rec);
        let _fault = FaultScope::activate(stall_first_forward(task, 200));
        let (lane, reg) = lane_for(task, serial(ShedPolicy::DropOldest, 2));

        let p0 = lane.submit_async(probe_input(0)); // in flight
        std::thread::sleep(Duration::from_millis(50));
        let p1 = lane.submit_async(probe_input(1)); // oldest queued
        let p2 = lane.submit_async(probe_input(2)); // queue full
        let p3 = lane.submit_async(probe_input(3)); // admitted, evicts p1

        match p1.wait() {
            Err(ServeError::Overloaded { queue_depth: 2, .. }) => {}
            other => panic!("want Overloaded for the evicted oldest, got {:?}", other.err()),
        }
        for p in [p0, p2, p3] {
            assert!(p.wait().is_ok(), "in-flight and fresher requests complete");
        }
        std::fs::remove_dir_all(reg.root()).ok();
    }
    assert_eq!(rec.summary().counter("serve.shed"), 1);
}

#[test]
fn expired_deadline_is_dropped_at_dequeue() {
    let task = "ddl";
    let rec = octs_obs::Recorder::new();
    {
        let _obs = octs_obs::ObsScope::activate(&rec);
        let _fault = FaultScope::activate(stall_first_forward(task, 150));
        let (lane, reg) = lane_for(task, serial(ShedPolicy::Block, 16));

        let p0 = lane.submit_async(probe_input(0)); // stalls the worker 150ms
        std::thread::sleep(Duration::from_millis(30));
        // Expires while queued behind the stalled forward.
        let p1 = lane.submit_async_deadline(probe_input(1), Duration::from_millis(20));
        // Generous deadline: survives the same queue wait.
        let p2 = lane.submit_async_deadline(probe_input(2), Duration::from_secs(30));

        assert!(p0.wait().is_ok());
        match p1.wait() {
            Err(ServeError::DeadlineExceeded) => {}
            other => panic!("want DeadlineExceeded, got {:?}", other.err()),
        }
        assert!(p2.wait().is_ok(), "unexpired deadline still completes");
        std::fs::remove_dir_all(reg.root()).ok();
    }
    assert_eq!(rec.summary().counter("serve.deadline_expired"), 1);
}

#[test]
fn wait_timeout_bounds_the_client_side_wait() {
    let task = "wt";
    let _fault = FaultScope::activate(stall_first_forward(task, 200));
    let (lane, reg) = lane_for(task, serial(ShedPolicy::Block, 16));

    let p0 = lane.submit_async(probe_input(0));
    let t0 = Instant::now();
    match p0.wait_timeout(Duration::from_millis(20)) {
        Err(ServeError::DeadlineExceeded) => {}
        other => panic!("want DeadlineExceeded, got {:?}", other.err()),
    }
    assert!(t0.elapsed() < Duration::from_millis(150), "wait_timeout must give up early");

    // A generous timeout behaves like wait().
    let p1 = lane.submit_async(probe_input(1));
    assert!(p1.wait_timeout(Duration::from_secs(30)).is_ok());
    std::fs::remove_dir_all(reg.root()).ok();
}

#[test]
fn injected_panic_fails_only_its_batch() {
    let task = "panic1";
    let plan = FaultPlan::new().panic_at(&forward_fault_site(task), 0);
    let _fault = FaultScope::activate(plan);
    let (lane, reg) = lane_for(task, serial(ShedPolicy::Block, 16));

    match lane.submit(probe_input(0)) {
        Err(ServeError::ForwardFailed { task: t, detail }) => {
            assert_eq!(t, task);
            assert!(detail.contains("panicked"), "detail: {detail}");
        }
        other => panic!("want ForwardFailed, got {:?}", other.err()),
    }
    // Below the breaker threshold: the lane keeps serving.
    assert!(lane.submit(probe_input(1)).is_ok());
    std::fs::remove_dir_all(reg.root()).ok();
}

#[test]
fn non_finite_forward_output_is_a_typed_failure() {
    let task = "nanout";
    let plan = FaultPlan::new().nan_at(&forward_fault_site(task), 0);
    let _fault = FaultScope::activate(plan);
    let (lane, reg) = lane_for(task, serial(ShedPolicy::Block, 16));

    match lane.submit(probe_input(0)) {
        Err(ServeError::ForwardFailed { detail, .. }) => {
            assert!(detail.contains("non-finite"), "detail: {detail}");
        }
        other => panic!("want ForwardFailed, got {:?}", other.err()),
    }
    assert!(lane.submit(probe_input(1)).is_ok());
    std::fs::remove_dir_all(reg.root()).ok();
}

#[test]
fn breaker_opens_sheds_heals_and_closes() {
    let task = "brk";
    let reg = tmp_registry(task);
    publish(&reg, task, 1);
    let model = ServableModel::from_checkpoint(reg.load_latest(task).unwrap()).unwrap();
    let reloads = Arc::new(AtomicU32::new(0));
    let reloader: octs_serve::Reloader = {
        let reg = ModelRegistry::open(reg.root()).unwrap();
        let reloads = Arc::clone(&reloads);
        let task = task.to_string();
        Arc::new(move || {
            reloads.fetch_add(1, Ordering::SeqCst);
            reg.load_latest(&task).and_then(ServableModel::from_checkpoint)
        })
    };
    let policy = BatchPolicy {
        breaker_threshold: 2,
        breaker_backoff: Duration::from_millis(300),
        ..serial(ShedPolicy::Block, 16)
    };

    let rec = octs_obs::Recorder::new();
    {
        let _obs = octs_obs::ObsScope::activate(&rec);
        let site = forward_fault_site(task);
        let plan = FaultPlan::new().panic_at(&site, 0).panic_at(&site, 1);
        let _fault = FaultScope::activate(plan);
        let lane = TaskLane::spawn_with_reloader(model, policy, Some(reloader));

        // Two consecutive failures trip the breaker.
        for i in 0..2u64 {
            match lane.submit(probe_input(i)) {
                Err(ServeError::ForwardFailed { .. }) => {}
                other => panic!("want ForwardFailed, got {:?}", other.err()),
            }
        }
        // While open, work is shed with the breaker's own error.
        match lane.submit(probe_input(2)) {
            Err(ServeError::CircuitOpen { task: t }) => assert_eq!(t, task),
            other => panic!("want CircuitOpen, got {:?}", other.err()),
        }
        // After the backoff the lane heals (reload) and the half-open probe
        // closes the breaker.
        std::thread::sleep(Duration::from_millis(400));
        assert!(lane.submit(probe_input(3)).is_ok(), "probe after heal succeeds");
        assert!(lane.submit(probe_input(4)).is_ok(), "breaker closed, lane healthy");
    }
    assert_eq!(reloads.load(Ordering::SeqCst), 1, "one heal reload");
    let s = rec.summary();
    assert_eq!(s.counter("serve.breaker_open"), 1);
    assert_eq!(s.counter("serve.breaker_close"), 1);
    assert_eq!(s.counter("serve.lane_restart"), 1);
    assert_eq!(s.counter("serve.forward_failed"), 2);
    std::fs::remove_dir_all(reg.root()).ok();
}

#[test]
fn heal_reload_retries_transient_io_fault() {
    let task = "healio";
    let reg = tmp_registry(task);
    publish(&reg, task, 1);
    let policy = BatchPolicy {
        breaker_threshold: 1,
        breaker_backoff: Duration::from_millis(50),
        reload_retries: 3,
        reload_backoff: Duration::from_millis(5),
        ..serial(ShedPolicy::Block, 16)
    };
    let root = reg.root().to_path_buf();

    let rec = octs_obs::Recorder::new();
    {
        let _obs = octs_obs::ObsScope::activate(&rec);
        let server = ForecastServer::new(reg, policy);
        server.serve_task(task).unwrap(); // the server handle's load op 0

        // One panicked forward trips the threshold-1 breaker; the heal's
        // first reload (load op 1) hits a transient IO fault and must be
        // retried, not treated as fatal.
        let plan =
            FaultPlan::new().panic_at(&forward_fault_site(task), 0).io_error("registry.load", 1);
        let _fault = FaultScope::activate(plan);
        match server.submit(task, probe_input(0)) {
            Err(ServeError::ForwardFailed { .. }) => {}
            other => panic!("want ForwardFailed, got {:?}", other.err()),
        }
        std::thread::sleep(Duration::from_millis(200)); // open window + heal
        assert!(server.submit(task, probe_input(1)).is_ok(), "healed after retried reload");
    }
    let s = rec.summary();
    assert_eq!(s.counter("serve.reload_retry"), 1, "exactly one transient retry");
    assert_eq!(s.counter("serve.lane_restart"), 1);
    assert_eq!(s.counter("serve.breaker_close"), 1);
    std::fs::remove_dir_all(root).ok();
}

/// Satellite regression: submit after stop must fail promptly with a typed
/// error, not hang; requests queued before the stop still drain.
#[test]
fn submit_after_stop_is_prompt_and_typed() {
    let reg = tmp_registry("stop");
    publish(&reg, "stop", 1);
    let server = ForecastServer::new(reg, BatchPolicy::default());
    server.serve_task("stop").unwrap();

    let queued: Vec<_> =
        (0..8).map(|i| server.submit_async("stop", probe_input(i)).unwrap()).collect();
    server.stop();

    let t0 = Instant::now();
    match server.submit("stop", probe_input(99)) {
        Err(ServeError::Shutdown) => {}
        other => panic!("want Shutdown, got {:?}", other.err()),
    }
    match server.try_submit("stop", probe_input(99)) {
        Err(ServeError::Shutdown) => {}
        other => panic!("want Shutdown, got {:?}", other.err()),
    }
    assert!(t0.elapsed() < Duration::from_secs(1), "post-stop submits must not hang");

    for p in queued {
        assert!(p.wait().is_ok(), "requests queued before stop still complete");
    }
    std::fs::remove_dir_all(server.registry().root()).ok();
}

/// Satellite regression: dropping a PendingForecast mid-flight abandons the
/// request without panicking the worker — the lane keeps serving.
#[test]
fn dropped_pending_forecast_never_panics_the_worker() {
    let task = "droppf";
    let _fault = FaultScope::activate(stall_first_forward(task, 100));
    let (lane, reg) = lane_for(task, serial(ShedPolicy::Block, 16));

    let in_flight = lane.submit_async(probe_input(0));
    std::thread::sleep(Duration::from_millis(30)); // worker is mid-forward
    drop(in_flight); // abandon while the worker computes it
    drop(lane.submit_async(probe_input(1))); // abandon while still queued

    for i in 2..6u64 {
        let fc = lane.submit(probe_input(i)).expect("worker survives dropped handles");
        assert_eq!(fc.version, 1);
    }
    std::fs::remove_dir_all(reg.root()).ok();
}

/// The default Block policy is pure backpressure: every request completes
/// and nothing is shed, even when submitters outpace a tiny queue.
#[test]
fn block_policy_completes_everything_without_shedding() {
    let rec = octs_obs::Recorder::new();
    {
        let _obs = octs_obs::ObsScope::activate(&rec);
        let (lane, reg) = lane_for("blockall", serial(ShedPolicy::Block, 2));
        let lane = Arc::new(lane);
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let lane = Arc::clone(&lane);
                std::thread::spawn(move || {
                    for i in 0..8 {
                        lane.submit(probe_input(t * 100 + i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_dir_all(reg.root()).ok();
    }
    let s = rec.summary();
    assert_eq!(s.counter("serve.requests"), 32);
    assert_eq!(s.counter("serve.shed"), 0);
    assert_eq!(s.counter("serve.deadline_expired"), 0);
}
