//! Seeded chaos sweep: generated fault plans (forward panics, NaN outputs,
//! registry IO faults and delays) under concurrent load on a two-lane
//! server. The contract being swept:
//!
//! 1. every submit resolves to a *typed* result — no hangs, no lost replies;
//! 2. the faulty lane recovers through its circuit breaker once the plan is
//!    disarmed;
//! 3. the healthy lane's forecasts — and every successful faulty-lane
//!    forecast — stay byte-identical to the fault-free run.
//!
//! Fault sites are task-qualified and the task names carry the sweep seed,
//! so a plan can only ever hit the lane it was generated for. The default
//! sweep covers 3 seeds; `OCTS_CHAOS_WIDE=1` (nightly CI) widens it to 10.

use octs_data::Adjacency;
use octs_fault::{FaultPlan, FaultScope};
use octs_model::{Forecaster, ModelDims};
use octs_serve::{
    forward_fault_site, quant_fault_site, BatchPolicy, ForecastServer, ModelRegistry, Precision,
    ServableCheckpoint, ServableModel, ServeError, ShedPolicy,
};
use octs_space::JointSpace;
use octs_tensor::Tensor;
use octs_testkit::Gen;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;

const N: usize = 4;
const F: usize = 2;
const P: usize = 12;
const CLIENTS: u64 = 4;
const REQS_PER_CLIENT: u64 = 10;
/// Forward-ordinal range the generated plans may fault; the lane's ordinal
/// counter outruns it during recovery, so a clean path always exists.
const FAULTED_FORWARDS: u64 = 30;

fn dims() -> ModelDims {
    ModelDims { n: N, f: F, p: P, out_steps: 3 }
}

fn fixture_forecaster(weight_seed: u64) -> (Forecaster, Adjacency) {
    let space = JointSpace::tiny();
    let ah = space.sample(&mut ChaCha8Rng::seed_from_u64(7));
    let adj = Adjacency::identity(N);
    let mut fc = Forecaster::new(ah, dims(), &adj, weight_seed);
    fc.training = false;
    fc.predict(&Tensor::zeros([1, F, N, P]));
    (fc, adj)
}

fn probe_input(tag: u64) -> Tensor {
    let len = F * N * P;
    let data: Vec<f32> = (0..len)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(tag);
            ((h >> 33) % 2000) as f32 / 1000.0 - 1.0
        })
        .collect();
    Tensor::new([F, N, P], data)
}

fn publish(reg: &ModelRegistry, task: &str, weight_seed: u64) -> u32 {
    let (fc, adj) = fixture_forecaster(weight_seed);
    let mut ckpt = ServableCheckpoint::new(task, &fc, &adj, weight_seed);
    reg.publish(&mut ckpt).unwrap()
}

/// Fault-free single-request forecasts, one per client tag, computed through
/// a throwaway registry handle so the server handle's load ordinals stay
/// untouched.
fn expectations(
    root: &std::path::Path,
    task: &str,
    tags: impl Iterator<Item = u64>,
) -> Vec<Tensor> {
    let reg = ModelRegistry::open(root).unwrap();
    let mut m = ServableModel::from_checkpoint(reg.load_latest(task).unwrap()).unwrap();
    tags.map(|t| m.predict_batch(&[&probe_input(t)]).remove(0)).collect()
}

struct Outcome {
    ok: u64,
    forward_failed: u64,
    circuit_open: u64,
}

/// One chaos run under one generated plan. Panics on any contract breach.
fn chaos_run(seed: u64) {
    let healthy = format!("ch{seed}_ok");
    let faulty = format!("ch{seed}_bad");
    let dir = std::env::temp_dir().join(format!("octs_chaos_{seed}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let reg = ModelRegistry::open(&dir).unwrap();
    publish(&reg, &healthy, 1);
    publish(&reg, &faulty, 2);

    let exp_healthy = expectations(&dir, &healthy, 0..CLIENTS * REQS_PER_CLIENT);
    let exp_faulty = expectations(&dir, &faulty, 0..CLIENTS * REQS_PER_CLIENT);

    let plan = Gen::from_seed(seed).serve_fault_plan(
        &forward_fault_site(&faulty),
        FAULTED_FORWARDS,
        "registry.load",
        2, // serve_task × 2 consumes server-handle load ops 0 and 1…
        3, // …so op 2 is the first heal reload, where IO faults bite
    );

    let policy = BatchPolicy {
        max_batch: 4,
        max_delay: Duration::from_micros(200),
        breaker_threshold: 2,
        breaker_backoff: Duration::from_millis(20),
        breaker_max_backoff: Duration::from_millis(200),
        reload_retries: 4,
        reload_backoff: Duration::from_millis(2),
        ..BatchPolicy::default().with_shed(ShedPolicy::Block)
    };
    let server = Arc::new(ForecastServer::new(reg, policy));
    server.serve_task(&healthy).unwrap();
    server.serve_task(&faulty).unwrap();

    let rec = octs_obs::Recorder::new();
    let _obs = octs_obs::ObsScope::activate(&rec);
    let outcome = {
        let _chaos = FaultScope::activate(plan);
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            // Healthy-lane client: every request must succeed, byte-exact.
            let server2 = Arc::clone(&server);
            let task = healthy.clone();
            let exp: Vec<Tensor> = exp_healthy
                [(c * REQS_PER_CLIENT) as usize..((c + 1) * REQS_PER_CLIENT) as usize]
                .to_vec();
            handles.push(std::thread::spawn(move || {
                let mut out = Outcome { ok: 0, forward_failed: 0, circuit_open: 0 };
                for (i, want) in exp.iter().enumerate() {
                    let tag = c * REQS_PER_CLIENT + i as u64;
                    let p = server2.submit_async(&task, probe_input(tag)).unwrap();
                    let fc = p
                        .wait_timeout(Duration::from_secs(30))
                        .expect("healthy-lane request failed (or hung) under chaos");
                    assert_eq!(
                        fc.values.data(),
                        want.data(),
                        "healthy-lane forecast diverged from the fault-free run"
                    );
                    out.ok += 1;
                }
                out
            }));

            // Faulty-lane client: failures are fine, but every reply must be
            // one of the typed serving errors — and arrive.
            let server2 = Arc::clone(&server);
            let task = faulty.clone();
            let exp: Vec<Tensor> = exp_faulty
                [(c * REQS_PER_CLIENT) as usize..((c + 1) * REQS_PER_CLIENT) as usize]
                .to_vec();
            handles.push(std::thread::spawn(move || {
                let mut out = Outcome { ok: 0, forward_failed: 0, circuit_open: 0 };
                for (i, want) in exp.iter().enumerate() {
                    let tag = c * REQS_PER_CLIENT + i as u64;
                    let p = server2.submit_async(&task, probe_input(tag)).unwrap();
                    match p.wait_timeout(Duration::from_secs(30)) {
                        Ok(fc) => {
                            assert_eq!(
                                fc.values.data(),
                                want.data(),
                                "successful faulty-lane forecast must still be byte-exact"
                            );
                            out.ok += 1;
                        }
                        Err(ServeError::ForwardFailed { .. }) => out.forward_failed += 1,
                        Err(ServeError::CircuitOpen { .. }) => out.circuit_open += 1,
                        Err(ServeError::DeadlineExceeded) => {
                            panic!("faulty-lane request hung (no reply in 30s)")
                        }
                        Err(other) => panic!("untyped/unexpected reply: {other}"),
                    }
                }
                out
            }));
        }
        let mut total = Outcome { ok: 0, forward_failed: 0, circuit_open: 0 };
        for h in handles {
            let o = h.join().expect("chaos client panicked");
            total.ok += o.ok;
            total.forward_failed += o.forward_failed;
            total.circuit_open += o.circuit_open;
        }
        // Keep the plan armed past the breaker backoff so an in-window heal
        // reload has to face the generated registry IO faults (and retry).
        std::thread::sleep(Duration::from_millis(60));
        total
    };

    // No lost replies: the books balance exactly.
    assert_eq!(
        outcome.ok + outcome.forward_failed + outcome.circuit_open,
        2 * CLIENTS * REQS_PER_CLIENT,
        "every submit must resolve exactly once"
    );
    // Recovery: with the plan disarmed the faulty lane must heal — breaker
    // drains, reload succeeds, probe closes it — and serve byte-exact again.
    let mut recovered = false;
    for _ in 0..500 {
        match server.submit(&faulty, probe_input(0)) {
            Ok(fc) => {
                assert_eq!(
                    fc.values.data(),
                    exp_faulty[0].data(),
                    "post-recovery forecast must match the fault-free run"
                );
                recovered = true;
                break;
            }
            Err(ServeError::CircuitOpen { .. }) | Err(ServeError::ForwardFailed { .. }) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(other) => panic!("unexpected error during recovery: {other}"),
        }
    }
    assert!(recovered, "faulty lane did not recover after the plan was disarmed");

    drop(_obs);
    let s = rec.summary();
    if outcome.circuit_open > 0 {
        assert!(s.counter("serve.breaker_open") >= 1, "CircuitOpen replies imply an open breaker");
        assert!(
            s.counter("serve.lane_restart") >= 1,
            "a tripped lane must heal through a registry reload"
        );
        assert!(s.counter("serve.breaker_close") >= 1, "a recovered breaker must close");
    }

    eprintln!(
        "chaos seed {seed}: ok={} forward_failed={} circuit_open={} breaker_open={} \
         lane_restart={} reload_retry={}",
        outcome.ok,
        outcome.forward_failed,
        outcome.circuit_open,
        s.counter("serve.breaker_open"),
        s.counter("serve.lane_restart"),
        s.counter("serve.reload_retry"),
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_sweep_every_submit_resolves_typed_and_lanes_recover() {
    let seeds: u64 = if std::env::var("OCTS_CHAOS_WIDE").as_deref() == Ok("1") { 10 } else { 3 };
    for seed in 0..seeds {
        chaos_run(0xC4A05 + seed);
    }
}

/// The quant-overflow half of the sweep: a seeded plan poisons the int8
/// load probe of one published version, and the load must demote to the
/// bit-exact `Fused` tier with exact typed accounting — one
/// `serve.precision_fallback` count, forecasts byte-identical to a clean
/// Fused load, and the one-shot fault consumed so the next load serves
/// Int8 again. No silent wrong forecasts anywhere.
#[test]
fn quant_overflow_probe_trips_fused_fallback_with_exact_accounting() {
    let task = "quantfb";
    let dir = std::env::temp_dir().join(format!("octs_chaos_quant_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let reg = ModelRegistry::open(&dir).unwrap();
    // A fixture wide enough to quantize: h=8 → i=16 puts the output head's
    // weight over the int8 minimum-size threshold (tiny sampled models can
    // fall entirely below it, making Int8 degenerate to Fused).
    let version = {
        use octs_space::{ArchDag, ArchHyper, HyperParams};
        let arch = ArchDag::sample_admissible(3, &mut ChaCha8Rng::seed_from_u64(7));
        let hp = HyperParams { b: 1, c: 3, h: 8, i: 16, u: 0, delta: 0 };
        let adj = Adjacency::identity(N);
        let mut fc = Forecaster::new(ArchHyper::new(arch, hp), dims(), &adj, 3);
        fc.training = false;
        fc.predict(&Tensor::zeros([1, F, N, P]));
        let mut ckpt = ServableCheckpoint::new(task, &fc, &adj, 3);
        reg.publish(&mut ckpt).unwrap()
    };
    assert_eq!(version, 1);

    // Control: a clean Int8 load meets the probe budget and serves Int8 —
    // the fallback below is caused by the injected overflow, not the model.
    let mut clean =
        ServableModel::from_checkpoint_with(reg.load_latest(task).unwrap(), Some(Precision::Int8))
            .unwrap();
    assert_eq!(clean.precision(), Some(Precision::Int8), "clean int8 probe must pass");
    let int8_forecast = clean.predict_batch(&[&probe_input(0)]).remove(0);

    // Fused reference the fallback must match bit-for-bit.
    let mut fused =
        ServableModel::from_checkpoint_with(reg.load_latest(task).unwrap(), Some(Precision::Fused))
            .unwrap();
    let want = fused.predict_batch(&[&probe_input(0)]).remove(0);
    assert!(
        int8_forecast.data() != want.data(),
        "fixture must actually quantize (int8 and fused forecasts differ)"
    );

    // Seeded plan over the task's probe site: the only in-range ordinal is
    // version - 1 = 0, so the drawn overflow hits exactly this version.
    let site = quant_fault_site(task);
    let plan = FaultPlan::seeded(0x0C75, 8, 0, 0, &[], &[(site.as_str(), version as u64)]);
    assert!(
        plan.quant_overflows.contains(&(site.clone(), (version - 1) as u64)),
        "seeded plan must schedule the probe overflow"
    );

    let rec = octs_obs::Recorder::new();
    let _obs = octs_obs::ObsScope::activate(&rec);
    {
        let _chaos = FaultScope::activate(plan);
        let mut demoted = ServableModel::from_checkpoint_with(
            reg.load_latest(task).unwrap(),
            Some(Precision::Int8),
        )
        .expect("an over-budget probe demotes, it does not poison the load");
        assert_eq!(
            demoted.precision(),
            Some(Precision::Fused),
            "saturating probe must trip the Fused fallback"
        );
        let got = demoted.predict_batch(&[&probe_input(0)]).remove(0);
        assert_eq!(
            got.data(),
            want.data(),
            "fallback forecasts must be byte-identical to a clean Fused load"
        );

        // One-shot: the overflow was consumed by the demoted load, so a
        // reload probes clean and serves Int8 again.
        let mut healed = ServableModel::from_checkpoint_with(
            reg.load_latest(task).unwrap(),
            Some(Precision::Int8),
        )
        .unwrap();
        assert_eq!(healed.precision(), Some(Precision::Int8), "fault consumed: int8 again");
        assert_eq!(healed.predict_batch(&[&probe_input(0)]).remove(0).data(), int8_forecast.data());
    }
    drop(_obs);

    let s = rec.summary();
    assert_eq!(s.counter("serve.precision_fallback"), 1, "exactly one typed fallback");
    std::fs::remove_dir_all(&dir).ok();
}

/// The generated serving plans replay from their seed: same seed → same
/// plan (including IO sites), different seed → different plan.
#[test]
fn serve_fault_plans_replay_from_seed() {
    let site = forward_fault_site("detcheck");
    let a = Gen::from_seed(11).serve_fault_plan(&site, 30, "registry.load", 2, 6);
    let b = Gen::from_seed(11).serve_fault_plan(&site, 30, "registry.load", 2, 6);
    assert_eq!(a, b, "same seed must generate the same plan");
    assert!(
        !a.site_panics.is_empty() || !a.site_nans.is_empty(),
        "serving plans always carry at least one forward fault"
    );
    let c = Gen::from_seed(12).serve_fault_plan(&site, 30, "registry.load", 2, 6);
    assert_ne!(a, c, "different seeds must diverge");
}
