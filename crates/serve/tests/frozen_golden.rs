//! Golden fixture for the frozen serving path: a fixed-seed checkpoint
//! published to a registry, loaded at every precision policy, and forecast
//! on a fixed probe — snapshotted bit-for-bit to
//! `tests/golden/frozen_serving.json`.
//!
//! The fixture pins, per tier: the effective precision after the load-time
//! conformance probe, whether the probe demoted the policy, and the exact
//! forecast bytes. Any change to freezing, fusion, quantization, the probe
//! budget, or the registry load path shows up as a structural diff naming
//! the drifted field. Regenerate deliberately with `UPDATE_GOLDEN=1 cargo
//! test -p octs-serve --test frozen_golden` and commit the fixture diff.

use octs_data::Adjacency;
use octs_model::{Forecaster, ModelDims};
use octs_serve::{ModelRegistry, Precision, ServableCheckpoint, ServableModel, INT8_PROBE_BUDGET};
use octs_space::{ArchDag, ArchHyper, HyperParams};
use octs_tensor::Tensor;
use octs_testkit::golden::check_against_fixture;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::path::PathBuf;

const N: usize = 4;
const F: usize = 2;
const P: usize = 12;
const WEIGHT_SEED: u64 = 3;

/// One precision tier's end-to-end outcome on the golden checkpoint.
#[derive(Serialize)]
struct TierSnapshot {
    /// Requested [`BatchPolicy::precision`] policy (`"tape"` for `None`).
    policy: String,
    /// Effective precision after the load-time probe.
    effective: String,
    /// Whether the probe demoted the policy (int8 over budget).
    fell_back: bool,
    /// `f32::to_bits` of the forecast on the fixed probe input.
    forecast_bits: Vec<u64>,
}

/// The committed snapshot: registry-load → frozen-forward per tier.
#[derive(Serialize)]
struct FrozenServingRun {
    /// Bump when the snapshot layout changes (forces regeneration).
    schema_version: u64,
    /// Registry version the checkpoint published as.
    version: u64,
    /// Weight seed of the fixture forecaster.
    weight_seed: u64,
    /// Per-policy outcomes, in `[tape, full, fused, int8]` order.
    tiers: Vec<TierSnapshot>,
    /// `f32::to_bits` of the worst int8-vs-tape deviation, normalized the
    /// same way as the load-time probe.
    int8_max_err_bits: u64,
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// The same quantizing shape as the chaos quant fixture: `h = 8`, `i = 16`
/// puts the output head's weight over the int8 minimum-size threshold.
fn publish_fixture(reg: &ModelRegistry, task: &str) -> u32 {
    let arch = ArchDag::sample_admissible(3, &mut ChaCha8Rng::seed_from_u64(7));
    let hp = HyperParams { b: 1, c: 3, h: 8, i: 16, u: 0, delta: 0 };
    let adj = Adjacency::identity(N);
    let dims = ModelDims { n: N, f: F, p: P, out_steps: 3 };
    let mut fc = Forecaster::new(ArchHyper::new(arch, hp), dims, &adj, WEIGHT_SEED);
    fc.training = false;
    fc.predict(&Tensor::zeros([1, F, N, P]));
    let mut ckpt = ServableCheckpoint::new(task, &fc, &adj, WEIGHT_SEED);
    reg.publish(&mut ckpt).unwrap()
}

fn probe_input() -> Tensor {
    let len = F * N * P;
    let data: Vec<f32> = (0..len)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 33) % 2000) as f32 / 1000.0 - 1.0
        })
        .collect();
    Tensor::new([F, N, P], data)
}

fn tier_name(p: Option<Precision>) -> String {
    match p {
        None => "tape".to_string(),
        Some(Precision::Full) => "full".to_string(),
        Some(Precision::Fused) => "fused".to_string(),
        Some(Precision::Int8) => "int8".to_string(),
    }
}

fn capture() -> FrozenServingRun {
    let dir = std::env::temp_dir().join(format!("octs_frozen_golden_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let reg = ModelRegistry::open(&dir).unwrap();
    let version = publish_fixture(&reg, "golden");
    let x = probe_input();

    let mut tiers = Vec::new();
    let mut forecasts = Vec::new();
    for policy in [None, Some(Precision::Full), Some(Precision::Fused), Some(Precision::Int8)] {
        let mut m = ServableModel::from_checkpoint_with(reg.load_latest("golden").unwrap(), policy)
            .unwrap();
        let forecast = m.predict_batch(&[&x]).remove(0);
        tiers.push(TierSnapshot {
            policy: tier_name(policy),
            effective: tier_name(m.precision()),
            fell_back: policy.is_some() && m.precision() != policy,
            forecast_bits: forecast.data().iter().map(|v| v.to_bits() as u64).collect(),
        });
        forecasts.push(forecast);
    }
    std::fs::remove_dir_all(&dir).ok();

    let tape = forecasts[0].data().to_vec();
    let int8 = forecasts[3].data();
    let scale = tape.iter().fold(1.0f32, |m, v| m.max(v.abs()));
    let int8_err = int8.iter().zip(&tape).fold(0.0f32, |m, (a, b)| m.max((a - b).abs())) / scale;

    FrozenServingRun {
        schema_version: 1,
        version: version as u64,
        weight_seed: WEIGHT_SEED,
        tiers,
        int8_max_err_bits: int8_err.to_bits() as u64,
    }
}

#[test]
fn frozen_serving_matches_golden_fixture() {
    let run = capture();

    // Structural invariants the snapshot must satisfy regardless of the
    // committed bytes: full and fused tiers are byte-identical to the tape,
    // int8 serves without demotion and stays within the probe budget.
    assert_eq!(run.tiers[1].forecast_bits, run.tiers[0].forecast_bits, "full != tape");
    assert_eq!(run.tiers[2].forecast_bits, run.tiers[0].forecast_bits, "fused != tape");
    for t in &run.tiers {
        assert_eq!(t.effective, t.policy, "clean loads must not demote ({})", t.policy);
        assert!(!t.fell_back, "clean loads must not fall back ({})", t.policy);
    }
    assert_ne!(
        run.tiers[3].forecast_bits, run.tiers[0].forecast_bits,
        "the golden fixture must actually quantize"
    );
    let int8_err = f32::from_bits(run.int8_max_err_bits as u32);
    assert!(
        int8_err <= INT8_PROBE_BUDGET,
        "int8 golden forecast deviates {int8_err:.3e}, over the probe budget {INT8_PROBE_BUDGET:.1e}"
    );

    if let Err(diff) = check_against_fixture(&fixture("frozen_serving.json"), &run) {
        panic!("{diff}");
    }
}
