//! # octs-fault
//!
//! A deterministic fault-injection harness for the AutoCTS+ robustness layer.
//!
//! Long-running phases — early-validation label collection, comparator
//! pre-training, comparator-guided ranking — must survive three classes of
//! failure: diverging candidate trainings (NaN losses), panicking candidate
//! evaluations, and IO errors while journaling progress. This crate lets
//! tests and benchmarks *schedule* exactly those failures at chosen points,
//! so every recovery path is exercised deterministically.
//!
//! ## Model
//!
//! A [`FaultPlan`] names the faults to inject, keyed by the deterministic
//! identifiers the pipelines already have:
//!
//! - **unit** — the flat index of a labelling unit (one candidate on one
//!   task). Unit-keyed faults poison a specific candidate's training
//!   ([`FaultPlan::nan_loss`]) or make its evaluation panic outright
//!   ([`FaultPlan::panic_unit`]).
//! - **candidate index** inside a ranking pool ([`FaultPlan::compare_panic`])
//!   — the candidate's comparator embedding panics, exercising the ranking
//!   layer's quarantine.
//! - **(site, op)** for IO faults ([`FaultPlan::io_error`]) — e.g. the `k`-th
//!   journal append fails, simulating a crash at that journal boundary.
//! - **(site, op)** for forward faults ([`FaultPlan::panic_at`],
//!   [`FaultPlan::nan_at`]) — the `k`-th batched forward at a serving site
//!   (e.g. `serve.forward.<task>`) panics mid-flight or emits non-finite
//!   output, exercising the lane's batch isolation and circuit breaker.
//! - **(site, op)** for quantization overflows ([`FaultPlan::quant_overflow`])
//!   — the `k`-th int8 load probe at `serve.quant.<task>` saturates its
//!   activation quantization, so the probe must trip the serving layer's
//!   precision fallback instead of shipping clipped forecasts.
//! - **epoch** for transient comparator pre-training NaNs
//!   ([`FaultPlan::pretrain_nan`]) — consumed once, so the rollback + retry
//!   path is seen to recover.
//!
//! Plans activate process-globally through a [`FaultScope`] guard that holds
//! an exclusive lock (concurrent fault tests serialize instead of
//! cross-contaminating) and deactivate on drop. When no scope is active
//! every hook is a single relaxed atomic load — the production fast path.
//!
//! Injected panics carry the [`InjectedPanic`] payload and are muted by the
//! scope's panic hook, so fault-suite output stays readable; real panics
//! still print through the previous hook.

#![warn(missing_docs)]

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The payload of every injected panic; lets `catch_unwind` sites and the
/// quiet panic hook distinguish scheduled faults from genuine bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic {
    /// The unit / candidate index the fault was keyed on.
    pub unit: u64,
}

/// A deterministic schedule of faults to inject.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Labelling units whose training loss turns NaN at the given epoch,
    /// every attempt — the candidate diverges persistently, so the trainer's
    /// rollback budget runs out and the candidate is poisoned.
    pub nan_loss_units: BTreeMap<u64, usize>,
    /// Labelling units whose training loss turns NaN at the given epoch
    /// *once* — the first attempt diverges, then the rollback + halved-lr
    /// retry must recover and complete the run unpoisoned.
    pub transient_nan_units: BTreeMap<u64, usize>,
    /// Labelling units that panic as soon as evaluation starts.
    pub panic_units: BTreeSet<u64>,
    /// Candidate indices (within a ranking pool) whose comparator embedding
    /// panics — the ranking layer must quarantine them.
    pub compare_panic_units: BTreeSet<u64>,
    /// Comparator pre-training epochs whose first loss goes NaN, once —
    /// the epoch-level rollback must absorb the transient and converge.
    pub pretrain_nan_epochs: BTreeSet<usize>,
    /// One-shot IO failures keyed by `(site, op index)`, e.g.
    /// `("journal.append", 7)` fails the 8th journal append.
    pub io_faults: BTreeSet<(String, u64)>,
    /// One-shot IO delays in milliseconds keyed by `(site, op index)` —
    /// e.g. `("registry.load", 0)` makes the first checkpoint load slow, the
    /// latency-degradation sibling of [`FaultPlan::io_error`].
    pub io_delays: BTreeMap<(String, u64), u64>,
    /// Forward-site panics keyed by `(site, op index)`: the `op`-th guarded
    /// forward at `site` panics mid-flight. Each ordinal occurs at most once
    /// per site counter, so these fire at most once by construction.
    pub site_panics: BTreeSet<(String, u64)>,
    /// One-shot non-finite-output injections keyed by `(site, op index)`:
    /// the `op`-th guarded forward at `site` reports garbage output, the
    /// numeric-poisoning sibling of [`FaultPlan::panic_at`].
    pub site_nans: BTreeSet<(String, u64)>,
    /// One-shot int8 activation-overflow injections keyed by `(site, op
    /// index)`: the `op`-th quantized load probe at `site` (e.g.
    /// `serve.quant.<task>`) runs with saturating activation quantization,
    /// so the serving layer's precision fallback path is exercised.
    pub quant_overflows: BTreeSet<(String, u64)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a persistent NaN loss for `unit` at training `epoch`.
    pub fn nan_loss(mut self, unit: u64, epoch: usize) -> Self {
        self.nan_loss_units.insert(unit, epoch);
        self
    }

    /// Schedules a one-shot NaN loss for `unit` at training `epoch` — the
    /// rollback must absorb it and the run must still complete.
    pub fn transient_nan(mut self, unit: u64, epoch: usize) -> Self {
        self.transient_nan_units.insert(unit, epoch);
        self
    }

    /// Schedules a panic when labelling `unit` begins.
    pub fn panic_unit(mut self, unit: u64) -> Self {
        self.panic_units.insert(unit);
        self
    }

    /// Schedules a panic inside the comparator embedding of ranking-pool
    /// candidate `idx`.
    pub fn compare_panic(mut self, idx: u64) -> Self {
        self.compare_panic_units.insert(idx);
        self
    }

    /// Schedules a one-shot NaN loss in comparator pre-training `epoch`.
    pub fn pretrain_nan(mut self, epoch: usize) -> Self {
        self.pretrain_nan_epochs.insert(epoch);
        self
    }

    /// Schedules a one-shot IO failure at `(site, op)`.
    pub fn io_error(mut self, site: &str, op: u64) -> Self {
        self.io_faults.insert((site.to_string(), op));
        self
    }

    /// Schedules a one-shot IO delay of `millis` at `(site, op)` — the
    /// slow-disk / cold-cache scenario for checkpoint loads.
    pub fn slow_io(mut self, site: &str, op: u64, millis: u64) -> Self {
        self.io_delays.insert((site.to_string(), op), millis);
        self
    }

    /// Schedules a panic in the `op`-th guarded forward at `site`.
    pub fn panic_at(mut self, site: &str, op: u64) -> Self {
        self.site_panics.insert((site.to_string(), op));
        self
    }

    /// Schedules non-finite output from the `op`-th guarded forward at
    /// `site` (consumed on fire).
    pub fn nan_at(mut self, site: &str, op: u64) -> Self {
        self.site_nans.insert((site.to_string(), op));
        self
    }

    /// Schedules a saturating int8 activation overflow for the `op`-th
    /// quantized load probe at `site` (consumed on fire).
    pub fn quant_overflow(mut self, site: &str, op: u64) -> Self {
        self.quant_overflows.insert((site.to_string(), op));
        self
    }

    /// A seeded random plan over `n_units` labelling units: `n_nan` distinct
    /// units diverge with NaN losses (at epoch 0) and `n_panic` further
    /// distinct units panic. For every registered IO site `(name, n_ops)` in
    /// `io_sites`, one IO error and one IO delay (1–15 ms) are drawn from the
    /// site's first `n_ops` operation ordinals, so seeded chaos plans cover
    /// the IO paths too. For every quantized-probe site `(name, n_ops)` in
    /// `quant_sites`, one activation overflow is drawn the same way. Fully
    /// determined by `seed` and the site lists.
    pub fn seeded(
        seed: u64,
        n_units: u64,
        n_nan: usize,
        n_panic: usize,
        io_sites: &[(&str, u64)],
        quant_sites: &[(&str, u64)],
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut units: Vec<u64> = (0..n_units).collect();
        units.shuffle(&mut rng);
        let mut plan = Self::new();
        let mut it = units.into_iter();
        for _ in 0..n_nan {
            if let Some(u) = it.next() {
                plan.nan_loss_units.insert(u, 0);
            }
        }
        for _ in 0..n_panic {
            if let Some(u) = it.next() {
                plan.panic_units.insert(u);
            }
        }
        for &(site, n_ops) in io_sites {
            if n_ops == 0 {
                continue;
            }
            use rand::Rng;
            plan.io_faults.insert((site.to_string(), rng.gen_range(0..n_ops)));
            let op = rng.gen_range(0..n_ops);
            plan.io_delays.insert((site.to_string(), op), rng.gen_range(1..=15));
        }
        for &(site, n_ops) in quant_sites {
            if n_ops == 0 {
                continue;
            }
            use rand::Rng;
            plan.quant_overflows.insert((site.to_string(), rng.gen_range(0..n_ops)));
        }
        plan
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self == &Self::default()
    }
}

/// One-shot triggers are consumed at fire time, so the active plan lives
/// behind a mutex; `ARMED` keeps the inactive fast path to one atomic load.
static ACTIVE: Mutex<Option<FaultPlan>> = Mutex::new(None);
static ARMED: AtomicBool = AtomicBool::new(false);
/// Serializes fault scopes across threads (test isolation).
static SCOPE: Mutex<()> = Mutex::new(());

thread_local! {
    static CURRENT_UNIT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// RAII guard keeping a [`FaultPlan`] active; deactivates on drop. Only one
/// scope exists at a time process-wide.
pub struct FaultScope {
    _lock: MutexGuard<'static, ()>,
}

impl FaultScope {
    /// Activates `plan` for the lifetime of the returned guard. Blocks if
    /// another scope is active (fault tests serialize).
    pub fn activate(plan: FaultPlan) -> Self {
        let lock = SCOPE.lock().unwrap_or_else(|e| e.into_inner());
        *ACTIVE.lock().expect("fault plan lock") = Some(plan);
        ARMED.store(true, Ordering::SeqCst);
        install_quiet_hook();
        Self { _lock: lock }
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *ACTIVE.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// True when a fault plan is active (one relaxed load — the fast path every
/// hook takes first).
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Runs `f` with the current thread's fault unit set to `unit` (restored
/// afterwards). The labelling fan-outs wrap each candidate's work in this so
/// the trainer's hooks know which unit they are running for. Cheap enough to
/// call unconditionally.
pub fn with_unit<R>(unit: u64, f: impl FnOnce() -> R) -> R {
    CURRENT_UNIT.with(|c| {
        let prev = c.replace(Some(unit));
        struct Restore<'a>(&'a Cell<Option<u64>>, Option<u64>);
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.0.set(self.1);
            }
        }
        let _restore = Restore(c, prev);
        f()
    })
}

/// The fault unit the current thread is labelling, if any.
pub fn current_unit() -> Option<u64> {
    CURRENT_UNIT.with(|c| c.get())
}

fn with_plan<R>(f: impl FnOnce(&mut FaultPlan) -> R) -> Option<R> {
    if !armed() {
        return None;
    }
    let mut guard = ACTIVE.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_mut().map(f)
}

/// Hook for the forecaster trainer: true when the current unit's loss should
/// read as NaN at `epoch`. Persistent schedules ([`FaultPlan::nan_loss`])
/// fire on every (re)attempt, exhausting the divergence guard's strike
/// budget; transient ones ([`FaultPlan::transient_nan`]) are consumed on
/// first fire, so the rollback + retry recovers.
pub fn nan_loss_at(epoch: usize) -> bool {
    if !armed() {
        return false;
    }
    let Some(unit) = current_unit() else { return false };
    with_plan(|p| {
        if p.nan_loss_units.get(&unit) == Some(&epoch) {
            return true;
        }
        if p.transient_nan_units.get(&unit) == Some(&epoch) {
            p.transient_nan_units.remove(&unit);
            return true;
        }
        false
    })
    .unwrap_or(false)
}

/// Hook for labelling fan-outs: panics (with [`InjectedPanic`]) if the
/// current unit is scheduled to panic.
pub fn maybe_panic_unit() {
    if !armed() {
        return;
    }
    let Some(unit) = current_unit() else { return };
    if with_plan(|p| p.panic_units.contains(&unit)).unwrap_or(false) {
        std::panic::panic_any(InjectedPanic { unit });
    }
}

/// Hook for the ranking layer: panics (with [`InjectedPanic`]) if ranking-
/// pool candidate `idx` is scheduled to fail during embedding.
pub fn maybe_panic_compare(idx: usize) {
    if !armed() {
        return;
    }
    if with_plan(|p| p.compare_panic_units.contains(&(idx as u64))).unwrap_or(false) {
        std::panic::panic_any(InjectedPanic { unit: idx as u64 });
    }
}

/// Hook for comparator pre-training: true once per scheduled `epoch`
/// (consumed), so the epoch-level rollback retries into a clean run.
pub fn pretrain_nan(epoch: usize) -> bool {
    if !armed() {
        return false;
    }
    with_plan(|p| p.pretrain_nan_epochs.remove(&epoch)).unwrap_or(false)
}

/// Hook for persistence layers: returns a scheduled IO error for
/// `(site, op)` exactly once, `Ok(())` otherwise.
pub fn io_fault(site: &str, op: u64) -> std::io::Result<()> {
    if !armed() {
        return Ok(());
    }
    let fired = with_plan(|p| p.io_faults.remove(&(site.to_string(), op))).unwrap_or(false);
    if fired {
        Err(std::io::Error::other(format!("injected IO fault at {site}#{op}")))
    } else {
        Ok(())
    }
}

/// Hook for guarded forwards (e.g. a serving lane's batched predict):
/// panics with [`InjectedPanic`] when the `op`-th forward at `site` is
/// scheduled to fail. Call inside the `catch_unwind` that isolates the
/// forward, so the injected panic exercises the real recovery path.
pub fn maybe_panic_site(site: &str, op: u64) {
    if !armed() {
        return;
    }
    if with_plan(|p| p.site_panics.contains(&(site.to_string(), op))).unwrap_or(false) {
        std::panic::panic_any(InjectedPanic { unit: op });
    }
}

/// Hook for guarded forwards: true when the `op`-th forward at `site` is
/// scheduled to produce non-finite output (consumed on fire). The caller is
/// responsible for actually poisoning its output so the downstream finite
/// check fails the way a genuinely garbage forward would.
pub fn nan_at_site(site: &str, op: u64) -> bool {
    if !armed() {
        return false;
    }
    with_plan(|p| p.site_nans.remove(&(site.to_string(), op))).unwrap_or(false)
}

/// Hook for quantized load probes (e.g. a serving lane's int8 conformance
/// check at model load): true when the `op`-th probe at `site` is scheduled
/// to overflow (consumed on fire). The caller arms saturating activation
/// quantization for the probe forward, so the downstream tolerance check
/// fails the way a genuinely clipping model would.
pub fn quant_overflow_at(site: &str, op: u64) -> bool {
    if !armed() {
        return false;
    }
    with_plan(|p| p.quant_overflows.remove(&(site.to_string(), op))).unwrap_or(false)
}

/// Hook for persistence layers: sleeps for a scheduled IO delay at
/// `(site, op)` exactly once (consumed), a no-op otherwise. Callers time the
/// surrounding operation as usual, so an injected delay surfaces in the same
/// latency histograms a genuinely slow disk would.
pub fn io_delay(site: &str, op: u64) {
    if !armed() {
        return;
    }
    let millis = with_plan(|p| p.io_delays.remove(&(site.to_string(), op))).flatten();
    if let Some(ms) = millis {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

// --- quiet panic hook ----------------------------------------------------

static QUIET_HOOK: std::sync::Once = std::sync::Once::new();

/// Installed once, process-wide: mutes panics carrying the [`InjectedPanic`]
/// payload (which only exist while a scope is active) and delegates every
/// other panic to the hook that was installed before. Capturing the previous
/// hook by move keeps this MSRV-clean — the hook-info type never needs to be
/// named.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_some() {
                return; // scheduled fault: stay quiet
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_hooks_are_noops() {
        assert!(!armed());
        assert!(!nan_loss_at(0));
        maybe_panic_unit();
        maybe_panic_compare(3);
        assert!(!pretrain_nan(0));
        assert!(io_fault("journal.append", 0).is_ok());
        maybe_panic_site("serve.forward.t", 0);
        assert!(!nan_at_site("serve.forward.t", 0));
        assert!(!quant_overflow_at("serve.quant.t", 0));
    }

    #[test]
    fn unit_scoping_nests_and_restores() {
        assert_eq!(current_unit(), None);
        let out = with_unit(7, || {
            assert_eq!(current_unit(), Some(7));
            with_unit(9, || assert_eq!(current_unit(), Some(9)));
            assert_eq!(current_unit(), Some(7));
            42
        });
        assert_eq!(out, 42);
        assert_eq!(current_unit(), None);
    }

    #[test]
    fn scheduled_faults_fire_and_one_shots_consume() {
        let plan = FaultPlan::new()
            .nan_loss(3, 1)
            .panic_unit(5)
            .pretrain_nan(2)
            .io_error("journal.append", 1);
        let _scope = FaultScope::activate(plan);

        // persistent NaN loss: fires repeatedly, only for its (unit, epoch)
        with_unit(3, || {
            assert!(nan_loss_at(1));
            assert!(nan_loss_at(1));
            assert!(!nan_loss_at(0));
        });
        with_unit(4, || assert!(!nan_loss_at(1)));

        // scheduled panic carries the InjectedPanic payload
        let err = std::panic::catch_unwind(|| with_unit(5, maybe_panic_unit)).unwrap_err();
        assert_eq!(err.downcast_ref::<InjectedPanic>(), Some(&InjectedPanic { unit: 5 }));

        // one-shots consume
        assert!(pretrain_nan(2));
        assert!(!pretrain_nan(2));
        assert!(io_fault("journal.append", 0).is_ok());
        assert!(io_fault("journal.append", 1).is_err());
        assert!(io_fault("journal.append", 1).is_ok());
    }

    #[test]
    fn scheduled_delays_fire_once_and_consume() {
        let plan = FaultPlan::new().slow_io("registry.load", 1, 30);
        let _scope = FaultScope::activate(plan);

        let t0 = std::time::Instant::now();
        io_delay("registry.load", 0); // not scheduled: no sleep
        assert!(t0.elapsed() < std::time::Duration::from_millis(20));

        let t1 = std::time::Instant::now();
        io_delay("registry.load", 1);
        assert!(t1.elapsed() >= std::time::Duration::from_millis(30));

        let t2 = std::time::Instant::now();
        io_delay("registry.load", 1); // one-shot: consumed above
        assert!(t2.elapsed() < std::time::Duration::from_millis(20));
    }

    #[test]
    fn scope_drop_disarms() {
        {
            let _scope = FaultScope::activate(FaultPlan::new().panic_unit(1));
            assert!(armed());
        }
        assert!(!armed());
        with_unit(1, maybe_panic_unit); // must not panic once disarmed
    }

    #[test]
    fn seeded_plans_are_deterministic_and_disjoint() {
        let a = FaultPlan::seeded(9, 32, 2, 3, &[], &[]);
        let b = FaultPlan::seeded(9, 32, 2, 3, &[], &[]);
        assert_eq!(a, b);
        assert_eq!(a.nan_loss_units.len(), 2);
        assert_eq!(a.panic_units.len(), 3);
        for u in a.nan_loss_units.keys() {
            assert!(!a.panic_units.contains(u), "unit {u} scheduled twice");
        }
        assert!(a.io_faults.is_empty() && a.io_delays.is_empty(), "no sites registered");
        assert!(a.quant_overflows.is_empty(), "no quant sites registered");
        assert_ne!(a, FaultPlan::seeded(10, 32, 2, 3, &[], &[]));
    }

    #[test]
    fn seeded_plans_cover_registered_io_sites_deterministically() {
        let sites: &[(&str, u64)] = &[("registry.load", 6), ("journal.append", 10)];
        let quant_sites: &[(&str, u64)] = &[("serve.quant.t", 4)];
        let a = FaultPlan::seeded(21, 16, 1, 1, sites, quant_sites);
        let b = FaultPlan::seeded(21, 16, 1, 1, sites, quant_sites);
        assert_eq!(a, b, "same seed and sites must give the same plan");
        for &(site, n_ops) in sites {
            assert!(
                a.io_faults.iter().any(|(s, op)| s == site && *op < n_ops),
                "site {site} got no IO error in range"
            );
            assert!(
                a.io_delays.iter().any(|((s, op), ms)| s == site && *op < n_ops && *ms >= 1),
                "site {site} got no IO delay in range"
            );
        }
        assert!(
            a.quant_overflows.iter().any(|(s, op)| s == "serve.quant.t" && *op < 4),
            "quant site got no overflow in range"
        );
        assert_ne!(a, FaultPlan::seeded(22, 16, 1, 1, sites, quant_sites), "seed changes the plan");
        assert!(
            FaultPlan::seeded(21, 16, 1, 1, &[("registry.load", 0)], &[("serve.quant.t", 0)])
                .io_faults
                .is_empty(),
            "a zero-op site registers nothing"
        );
    }

    #[test]
    fn site_panics_and_nans_fire_at_their_ordinal() {
        let plan = FaultPlan::new().panic_at("serve.forward.t", 2).nan_at("serve.forward.t", 4);
        let _scope = FaultScope::activate(plan);

        maybe_panic_site("serve.forward.t", 1); // not scheduled
        maybe_panic_site("serve.forward.u", 2); // other site
        let err = std::panic::catch_unwind(|| maybe_panic_site("serve.forward.t", 2)).unwrap_err();
        assert_eq!(err.downcast_ref::<InjectedPanic>(), Some(&InjectedPanic { unit: 2 }));

        assert!(!nan_at_site("serve.forward.t", 3));
        assert!(!nan_at_site("serve.forward.u", 4));
        assert!(nan_at_site("serve.forward.t", 4));
        assert!(!nan_at_site("serve.forward.t", 4), "one-shot: consumed");
    }

    #[test]
    fn quant_overflows_fire_at_their_ordinal_and_consume() {
        let plan = FaultPlan::new().quant_overflow("serve.quant.t", 0);
        let _scope = FaultScope::activate(plan);

        assert!(!quant_overflow_at("serve.quant.t", 1), "wrong ordinal");
        assert!(!quant_overflow_at("serve.quant.u", 0), "wrong site");
        assert!(quant_overflow_at("serve.quant.t", 0));
        assert!(!quant_overflow_at("serve.quant.t", 0), "one-shot: consumed");
    }
}
