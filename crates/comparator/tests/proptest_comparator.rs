//! Property-based tests of the comparator: encoding/decision invariants that
//! must hold for any arch-hyper pair and any (finite) task embedding.

use octs_comparator::{Tahc, TahcConfig};
use octs_space::{HyperSpace, JointSpace};
use octs_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn comparator(task_aware: bool, seed: u64) -> Tahc {
    let cfg = TahcConfig { task_aware, ..TahcConfig::test() };
    Tahc::new(cfg, HyperSpace::scaled(), seed)
}

fn prelim(fill: f32) -> Tensor {
    Tensor::full([3, 10, 8], fill)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn decisions_are_deterministic(seed in 0u64..5_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let space = JointSpace::scaled();
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        let p = prelim(0.2);
        let t = comparator(true, seed);
        prop_assert_eq!(t.compare(Some(&p), &a, &b), t.compare(Some(&p), &a, &b));
    }

    #[test]
    fn decisions_finite_for_any_embedding_scale(seed in 0u64..5_000, fill in -3.0f32..3.0) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let space = JointSpace::scaled();
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        let p = prelim(fill);
        let t = comparator(true, seed);
        let g = octs_tensor::Graph::new();
        let z = t.logit(&g, Some(&p), &a, &b);
        prop_assert!(z.value().item().is_finite());
    }

    #[test]
    fn identical_candidates_give_consistent_self_comparison(seed in 0u64..5_000) {
        // compare(a, a) can be either true or false (sigmoid threshold), but
        // it must be the same in repeated calls and its logit finite.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let space = JointSpace::scaled();
        let a = space.sample(&mut rng);
        let t = comparator(false, seed);
        let first = t.compare(None, &a, &a);
        for _ in 0..3 {
            prop_assert_eq!(t.compare(None, &a, &a), first);
        }
    }

    #[test]
    fn task_pathway_changes_decisions_sometimes(seed in 0u64..200) {
        // across many seeds, at least the logit value must move when the
        // task embedding changes (the task input is actually wired in).
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let space = JointSpace::scaled();
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        let t = comparator(true, seed);
        let g1 = octs_tensor::Graph::new();
        let z1 = t.logit(&g1, Some(&prelim(0.0)), &a, &b).value().item();
        let g2 = octs_tensor::Graph::new();
        let z2 = t.logit(&g2, Some(&prelim(1.0)), &a, &b).value().item();
        prop_assert!((z1 - z2).abs() > 0.0, "task embedding had zero influence");
    }

    #[test]
    fn training_on_consistent_pairs_never_diverges(seed in 0u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let space = JointSpace::scaled();
        let ahs = space.sample_distinct(4, &mut rng);
        let p = prelim(0.3);
        let mut t = comparator(true, seed);
        let mut opt = octs_tensor::Adam::new(3e-3, 0.0);
        for _ in 0..5 {
            let batch: Vec<_> = vec![
                (Some(&p), &ahs[0], &ahs[1], 1.0),
                (Some(&p), &ahs[2], &ahs[3], 0.0),
            ];
            let loss = t.train_batch(&mut opt, &batch);
            prop_assert!(loss.is_finite());
        }
        prop_assert!(t.ps.all_finite());
    }
}
