//! Comparator calibration diagnostics.
//!
//! A comparator's binary output hides how *confident* and how *reliable* it
//! is. These utilities quantify both against labelled samples: accuracy as a
//! function of the true score gap (pairs that are nearly tied are inherently
//! hard; a healthy comparator is much better on well-separated pairs), and
//! ranking fidelity (Kendall τ between comparator-derived and true
//! rankings). Used by the experiment harnesses and useful to anyone
//! deploying a pre-trained comparator on new domains.

use crate::ahc::Tahc;
use crate::pretrain::LabeledAh;
use octs_tensor::Tensor;

/// Accuracy within score-gap buckets.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Bucket upper edges (score-gap quantiles).
    pub gap_edges: Vec<f32>,
    /// Pairwise accuracy per bucket (NaN for empty buckets).
    pub accuracy: Vec<f32>,
    /// Pairs per bucket.
    pub counts: Vec<usize>,
    /// Overall pairwise accuracy.
    pub overall: f32,
}

/// Evaluates comparator accuracy bucketed by the true score gap `|R'(a) −
/// R'(b)|` over all ordered pairs of `pool`.
pub fn calibrate(
    tahc: &Tahc,
    prelim: Option<&Tensor>,
    pool: &[LabeledAh],
    buckets: usize,
) -> CalibrationReport {
    assert!(buckets >= 1);
    let mut gaps: Vec<f32> = Vec::new();
    let mut outcomes: Vec<(f32, bool)> = Vec::new();
    for i in 0..pool.len() {
        for j in 0..pool.len() {
            if i == j || (pool[i].score - pool[j].score).abs() < 1e-9 {
                continue;
            }
            let truth_first_better = pool[i].score < pool[j].score;
            let predicted = tahc.compare(prelim, &pool[i].ah, &pool[j].ah);
            let gap = (pool[i].score - pool[j].score).abs();
            gaps.push(gap);
            outcomes.push((gap, predicted == truth_first_better));
        }
    }
    if outcomes.is_empty() {
        return CalibrationReport {
            gap_edges: vec![],
            accuracy: vec![],
            counts: vec![],
            overall: 0.0,
        };
    }
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite gaps"));
    let edges: Vec<f32> = (1..=buckets)
        .map(|b| gaps[(b * gaps.len() / buckets).saturating_sub(1).min(gaps.len() - 1)])
        .collect();

    let mut correct = vec![0usize; buckets];
    let mut counts = vec![0usize; buckets];
    let mut total_correct = 0usize;
    for (gap, ok) in &outcomes {
        let bucket = edges.iter().position(|&e| *gap <= e).unwrap_or(buckets - 1);
        counts[bucket] += 1;
        if *ok {
            correct[bucket] += 1;
            total_correct += 1;
        }
    }
    let accuracy: Vec<f32> = correct
        .iter()
        .zip(&counts)
        .map(|(&c, &n)| if n > 0 { c as f32 / n as f32 } else { f32::NAN })
        .collect();
    CalibrationReport {
        gap_edges: edges,
        accuracy,
        counts,
        overall: total_correct as f32 / outcomes.len() as f32,
    }
}

/// Kendall τ between the comparator's round-robin ranking of `pool` and the
/// true score ranking (1.0 = identical order).
pub fn ranking_fidelity(tahc: &Tahc, prelim: Option<&Tensor>, pool: &[LabeledAh]) -> f32 {
    let k = pool.len();
    if k < 2 {
        return 0.0;
    }
    let mut wins = vec![0usize; k];
    for i in 0..k {
        for j in i + 1..k {
            if tahc.compare(prelim, &pool[i].ah, &pool[j].ah) {
                wins[i] += 1;
            } else {
                wins[j] += 1;
            }
        }
    }
    // more wins = better; lower score = better ⇒ compare wins against -score
    let wins_f: Vec<f32> = wins.iter().map(|&w| w as f32).collect();
    let neg_scores: Vec<f32> = pool.iter().map(|l| -l.score).collect();
    octs_data::metrics::kendall_tau(&wins_f, &neg_scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ahc::TahcConfig;
    use octs_space::{HyperSpace, JointSpace};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn pool_with_rule() -> Vec<LabeledAh> {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        JointSpace::scaled()
            .sample_distinct(8, &mut rng)
            .into_iter()
            .map(|ah| {
                let score = ah.hyper.h as f32;
                LabeledAh { ah, score, quarantined: false }
            })
            .collect()
    }

    fn trained_comparator(pool: &[LabeledAh]) -> Tahc {
        let mut tahc = Tahc::new(
            TahcConfig { task_aware: false, ..TahcConfig::test() },
            HyperSpace::scaled(),
            0,
        );
        let mut opt = octs_tensor::Adam::new(5e-3, 0.0);
        for _ in 0..30 {
            let mut batch = Vec::new();
            for i in 0..pool.len() {
                for j in 0..pool.len() {
                    if pool[i].score != pool[j].score {
                        let y = if pool[i].score < pool[j].score { 1.0 } else { 0.0 };
                        batch.push((None, &pool[i].ah, &pool[j].ah, y));
                    }
                }
            }
            tahc.train_batch(&mut opt, &batch);
        }
        tahc
    }

    #[test]
    fn trained_comparator_calibrates_well() {
        let pool = pool_with_rule();
        let tahc = trained_comparator(&pool);
        let report = calibrate(&tahc, None, &pool, 3);
        assert!(report.overall > 0.8, "overall {:.3}", report.overall);
        assert_eq!(report.accuracy.len(), 3);
        assert_eq!(report.counts.iter().sum::<usize>(), 8 * 7 - /*ties h==h*/ count_ties(&pool));
    }

    fn count_ties(pool: &[LabeledAh]) -> usize {
        let mut ties = 0;
        for i in 0..pool.len() {
            for j in 0..pool.len() {
                if i != j && (pool[i].score - pool[j].score).abs() < 1e-9 {
                    ties += 1;
                }
            }
        }
        ties
    }

    #[test]
    fn untrained_comparator_near_chance() {
        let pool = pool_with_rule();
        let tahc = Tahc::new(
            TahcConfig { task_aware: false, ..TahcConfig::test() },
            HyperSpace::scaled(),
            3,
        );
        let report = calibrate(&tahc, None, &pool, 2);
        assert!(report.overall < 0.95, "untrained should not be near-perfect");
        assert!(report.overall.is_finite());
    }

    #[test]
    fn ranking_fidelity_bounds() {
        let pool = pool_with_rule();
        let trained = trained_comparator(&pool);
        let tau_trained = ranking_fidelity(&trained, None, &pool);
        assert!((-1.0..=1.0).contains(&tau_trained));
        assert!(tau_trained > 0.5, "trained τ {tau_trained}");
    }

    #[test]
    fn empty_pool_is_safe() {
        let tahc = Tahc::new(
            TahcConfig { task_aware: false, ..TahcConfig::test() },
            HyperSpace::scaled(),
            0,
        );
        let report = calibrate(&tahc, None, &[], 3);
        assert_eq!(report.overall, 0.0);
        assert_eq!(ranking_fidelity(&tahc, None, &[]), 0.0);
    }
}
