//! Streamed bank collection: label tasks one at a time as they flow out of a
//! shard cursor, keeping only the task-free residue the trainer reads.
//!
//! The in-memory pipeline ([`crate::pretrain::collect_bank`]) holds every
//! [`ForecastTask`] — dataset included — for the whole run. At thousands of
//! tasks that is gigabytes of resident data the training loop never touches:
//! [`crate::pretrain::TahcTrainer`] reads only the preliminary embeddings and
//! the labelled samples. The functions here exploit that split. Each task is
//! embedded and labelled the moment it arrives, its `(prelim, samples)` pair
//! is appended to a [`LabeledBank`], and the task (with its dataset) is
//! dropped — peak memory is the streaming window, not the bank.
//!
//! Determinism contract: [`label_task`] depends only on `(task, ti, space,
//! cfg)` — the shared pool comes from the master seed, the task's random
//! samples from the per-task RNG substream — so any partition of tasks
//! across workers, any arrival order and any prefetch window reproduces the
//! in-memory pipeline's labels byte for byte.

use crate::pretrain::{label_one, task_label_units, LabeledBank, PretrainConfig, TaskSamples};
use crate::task_embed::TaskEmbedder;
use octs_data::ForecastTask;
use octs_space::{ArchHyper, JointSpace};
use rayon::prelude::*;

/// Labels a single task against the shared pool and its own random samples
/// (parallel over the task's units). Equivalent to the task's slice of
/// [`crate::pretrain::collect_labels`].
pub fn label_task(
    task: &ForecastTask,
    ti: usize,
    shared: &[ArchHyper],
    space: &JointSpace,
    cfg: &PretrainConfig,
) -> TaskSamples {
    let units = task_label_units(ti, shared, space, cfg);
    let labeled: Vec<_> =
        units.par_iter().map(|u| label_one(&u.ah, task, u.unit, &cfg.label_cfg)).collect();
    let mut shared_l = Vec::with_capacity(cfg.l_shared);
    let mut random_l = Vec::with_capacity(cfg.l_random);
    for (u, l) in units.iter().zip(labeled) {
        if u.shared {
            shared_l.push(l);
        } else {
            random_l.push(l);
        }
    }
    TaskSamples { shared: shared_l, random: random_l }
}

/// Streams `(task_idx, task)` pairs through embed + label, dropping each
/// task as soon as its residue is banked. The stream must be densely ordered
/// (task 0, 1, 2, …) — the single-consumer shape; sharded workers use
/// [`label_task`] directly with their own index bookkeeping.
///
/// Byte-identical to [`crate::pretrain::collect_bank`] on the same task
/// list: the embedder is frozen (no RNG consumed per task) and every label
/// derives from per-task substreams.
pub fn collect_labeled_bank<I>(
    stream: I,
    embedder: &mut TaskEmbedder,
    space: &JointSpace,
    cfg: &PretrainConfig,
) -> LabeledBank
where
    I: IntoIterator<Item = (usize, ForecastTask)>,
{
    let _obs = octs_obs::span("phase.label_stream");
    let shared = crate::pretrain::shared_pool(space, cfg);
    let mut bank = LabeledBank::default();
    for (ti, task) in stream {
        assert_eq!(ti, bank.len(), "stream must be densely ordered from task 0");
        bank.prelims.push(embedder.preliminary(&task));
        bank.samples.push(label_task(&task, ti, &shared, space, cfg));
        // `task` drops here; its dataset never outlives this iteration.
    }
    octs_obs::counter("label_stream.tasks", bank.len() as u64);
    bank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::{collect_bank, shared_pool};
    use crate::task_embed::TaskEmbedConfig;
    use crate::ts2vec::Ts2VecConfig;
    use octs_data::{DatasetProfile, Domain, ForecastSetting};

    fn tiny_tasks(n: usize) -> Vec<ForecastTask> {
        (0..n)
            .map(|i| {
                let p = DatasetProfile::custom(
                    &format!("st{i}"),
                    if i % 2 == 0 { Domain::Traffic } else { Domain::Energy },
                    3,
                    200,
                    24,
                    0.3,
                    0.1,
                    10.0,
                    70 + i as u64,
                );
                ForecastTask::new(p.generate(0), ForecastSetting::multi(4, 2), 0.6, 0.2, 2)
            })
            .collect()
    }

    fn tiny_embedder() -> TaskEmbedder {
        TaskEmbedder::new(TaskEmbedConfig::test(), Ts2VecConfig::test(), 1)
    }

    #[test]
    fn streamed_bank_matches_in_memory_byte_for_byte() {
        let tasks = tiny_tasks(3);
        let space = JointSpace::tiny();
        let cfg = PretrainConfig { l_shared: 3, l_random: 3, ..PretrainConfig::test() };

        let mut emb_a = tiny_embedder();
        let in_memory = collect_bank(tasks.clone(), &mut emb_a, &space, &cfg);

        let mut emb_b = tiny_embedder();
        let streamed =
            collect_labeled_bank(tasks.into_iter().enumerate(), &mut emb_b, &space, &cfg);

        assert_eq!(streamed.len(), in_memory.tasks.len());
        for (a, b) in streamed.prelims.iter().zip(&in_memory.prelims) {
            assert_eq!(a.data(), b.data(), "prelims must be byte-identical");
        }
        for (a, b) in streamed.samples.iter().zip(&in_memory.samples) {
            for (x, y) in a.shared.iter().chain(&a.random).zip(b.shared.iter().chain(&b.random)) {
                assert_eq!(x.ah, y.ah);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
                assert_eq!(x.quarantined, y.quarantined);
            }
        }
    }

    #[test]
    fn label_task_is_partition_independent() {
        // Labelling task 2 alone must equal labelling it amid the full bank:
        // the per-task substream makes the unit list context-free.
        let tasks = tiny_tasks(3);
        let space = JointSpace::tiny();
        let cfg = PretrainConfig { l_shared: 2, l_random: 2, ..PretrainConfig::test() };
        let pool = shared_pool(&space, &cfg);

        let alone = label_task(&tasks[2], 2, &pool, &space, &cfg);
        let mut emb = tiny_embedder();
        let full = collect_bank(tasks, &mut emb, &space, &cfg);
        for (x, y) in alone
            .shared
            .iter()
            .chain(&alone.random)
            .zip(full.samples[2].shared.iter().chain(&full.samples[2].random))
        {
            assert_eq!(x.ah, y.ah);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "densely ordered")]
    fn out_of_order_stream_is_rejected() {
        let tasks = tiny_tasks(2);
        let space = JointSpace::tiny();
        let cfg = PretrainConfig::test();
        let mut emb = tiny_embedder();
        let reversed = tasks.into_iter().enumerate().rev();
        collect_labeled_bank(reversed, &mut emb, &space, &cfg);
    }
}
