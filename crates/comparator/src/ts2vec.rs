//! TS2Vec-style self-supervised time-series encoder (Eq. 9).
//!
//! The original TS2Vec is a large pre-trained dilated-conv encoder with
//! hierarchical contrastive learning. This substitute keeps the accuracy-
//! relevant structure at CPU scale: a causal dilated-conv backbone producing
//! per-timestep embeddings, trained with TS2Vec's two contrastive signals on
//! overlapping crops —
//! *temporal contrast*: the same timestep seen from two crops must embed
//! closer than other timesteps of the same series;
//! *instance contrast*: a series must embed closer to itself than to other
//! series at the same timestep.

use octs_data::CtsData;
use octs_tensor::{Graph, Init, ParamStore, Tensor, Var};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Encoder hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ts2VecConfig {
    /// Output embedding width `F'` (paper: 256; scaled here).
    pub dim: usize,
    /// Number of dilated conv layers (dilations 1, 2, 4, ...).
    pub depth: usize,
    /// Contrastive pre-training steps.
    pub steps: usize,
    /// Series per contrastive batch.
    pub batch: usize,
    /// Crop length used during pre-training.
    pub crop_len: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Ts2VecConfig {
    /// CPU-scaled configuration.
    pub fn scaled() -> Self {
        Self { dim: 16, depth: 3, steps: 60, batch: 8, crop_len: 48, lr: 1e-3, seed: 0 }
    }

    /// Tiny configuration for unit tests.
    pub fn test() -> Self {
        Self { dim: 8, depth: 2, steps: 8, batch: 4, crop_len: 16, lr: 1e-3, seed: 0 }
    }
}

/// The encoder: owns its parameters; [`Ts2Vec::pretrain`] fits them once,
/// after which [`Ts2Vec::encode`] is a frozen feature extractor.
///
/// `Clone` exists for the sharded pre-training workers: a trained encoder is
/// frozen (encoding consumes no RNG), so cloned copies embed identically.
#[derive(Clone)]
pub struct Ts2Vec {
    /// Configuration.
    pub cfg: Ts2VecConfig,
    /// Parameters.
    pub ps: ParamStore,
    input_dim: usize,
    trained: bool,
}

impl Ts2Vec {
    /// Creates an untrained encoder for `input_dim` features per step.
    pub fn new(cfg: Ts2VecConfig, input_dim: usize) -> Self {
        Self { cfg, ps: ParamStore::new(cfg.seed ^ 0x7511), input_dim, trained: false }
    }

    /// Whether [`Ts2Vec::pretrain`] has run.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Marks the encoder as trained (used when restoring from a checkpoint).
    pub fn mark_trained(&mut self) {
        self.trained = true;
    }

    /// Forward pass: `x` is `[B, S, F]`, output `[B, S, dim]`.
    fn forward(&mut self, g: &Graph, x: &Var) -> Var {
        let s = x.shape();
        let (b, len, f) = (s[0], s[1], s[2]);
        assert_eq!(f, self.input_dim);
        let d = self.cfg.dim;
        // project F -> dim
        let mut h = layers_linear_init(&mut self.ps, g, "proj", x, f, d);
        // dilated conv stack over time with residuals: [B,S,d] -> [B,d,S]
        for layer in 0..self.cfg.depth {
            let dilation = 1usize << layer;
            let hc = h.permute(&[0, 2, 1]); // [B, d, S]
            let w = self.ps.var(g, &format!("conv{layer}/w"), &[d, d, 3], Init::Xavier);
            let bias = self.ps.var(g, &format!("conv{layer}/b"), &[d], Init::Zeros);
            let y = hc.conv1d(&w, Some(&bias), dilation).gelu().permute(&[0, 2, 1]);
            h = h.add(&y);
        }
        let _ = (b, len);
        h
    }

    /// Encodes one time-series window `[N, S, F]` into per-series,
    /// per-timestep embeddings `[N, S, dim]` (Eq. 9). Values are z-scored
    /// per window so embedding is scale-free across datasets.
    pub fn encode(&mut self, window: &Tensor) -> Tensor {
        assert_eq!(window.rank(), 3, "window must be [N, S, F]");
        let norm = znorm_window(window);
        let g = Graph::new();
        let x = g.constant(norm);
        let out = self.forward(&g, &x);
        out.value()
    }

    /// Self-supervised contrastive pre-training on raw datasets.
    pub fn pretrain(&mut self, datasets: &[&CtsData]) {
        assert!(!datasets.is_empty());
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let mut opt = octs_tensor::Adam::new(self.cfg.lr, 1e-5);
        let crop = self.cfg.crop_len;
        for _step in 0..self.cfg.steps {
            let ds = datasets[rng.gen_range(0..datasets.len())];
            if ds.t() < crop * 2 {
                continue;
            }
            // sample `batch` series and a segment of 2*crop, two overlapping
            // crops shifted by `off`.
            let seg_start = rng.gen_range(0..=(ds.t() - 2 * crop));
            let off = rng.gen_range(1..crop);
            let overlap = crop - off;
            let mut x1 = Tensor::zeros([self.cfg.batch, crop, self.input_dim]);
            let mut x2 = Tensor::zeros([self.cfg.batch, crop, self.input_dim]);
            for bi in 0..self.cfg.batch {
                let series = rng.gen_range(0..ds.n());
                for t in 0..crop {
                    for f in 0..self.input_dim {
                        *x1.at_mut(&[bi, t, f]) = ds.value(series, seg_start + t, f);
                        *x2.at_mut(&[bi, t, f]) = ds.value(series, seg_start + off + t, f);
                    }
                }
            }
            let x1 = znorm_window(&x1);
            let x2 = znorm_window(&x2);

            let g = Graph::new();
            let v1 = self.forward(&g, &g.constant(x1));
            let v2 = self.forward(&g, &g.constant(x2));
            // aligned overlap: v1[:, off.., :] vs v2[:, ..overlap, :]
            let z1 = v1.slice_axis(1, off, overlap); // [B, O, d]
            let z2 = v2.slice_axis(1, 0, overlap);

            let temporal = contrastive_axis(&g, &z1, &z2, 1);
            let instance = contrastive_axis(&g, &z1, &z2, 0);
            let loss = temporal.add(&instance);
            g.backward(&loss);
            let mut grads = g.param_grads();
            octs_tensor::clip_grad_norm(&mut grads, 5.0);
            opt.step(&mut self.ps, &grads);
        }
        self.trained = true;
    }
}

/// Z-normalizes a window per feature (over all series and steps).
pub(crate) fn znorm_window(w: &Tensor) -> Tensor {
    let shape = w.shape().to_vec();
    let f = shape[2];
    let mut out = w.clone();
    for feat in 0..f {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for (i, v) in w.data().iter().enumerate() {
            if i % f == feat {
                sum += f64::from(*v);
                count += 1;
            }
        }
        let mean = (sum / count.max(1) as f64) as f32;
        let mut var = 0.0f64;
        for (i, v) in w.data().iter().enumerate() {
            if i % f == feat {
                var += f64::from((*v - mean) * (*v - mean));
            }
        }
        let std = ((var / count.max(1) as f64).sqrt() as f32).max(1e-4);
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            if i % f == feat {
                *v = (*v - mean) / std;
            }
        }
    }
    out
}

/// Softmax-contrastive loss along `axis`:
/// - `axis = 1` (temporal): within each series, timestep `t` of `z1` must
///   match timestep `t` of `z2` against other timesteps;
/// - `axis = 0` (instance): at each timestep, series `b` of `z1` must match
///   series `b` of `z2` against other series.
fn contrastive_axis(g: &Graph, z1: &Var, z2: &Var, axis: usize) -> Var {
    // Bring the contrasted axis to the middle: [outer, K, d]
    let (a, b) = if axis == 1 {
        (z1.clone(), z2.clone())
    } else {
        (z1.permute(&[1, 0, 2]), z2.permute(&[1, 0, 2]))
    };
    let k = a.shape()[1];
    let scores = a.matmul(&b.transpose()); // [outer, K, K]
    let probs = scores.softmax();
    // extract diagonals: sum(probs ⊙ I) over the last axis, with the identity
    // mask materialized per outer slice.
    let outer = probs.shape()[0];
    let mut tile = Tensor::zeros([outer, k, k]);
    for o in 0..outer {
        for i in 0..k {
            tile.data_mut()[(o * k + i) * k + i] = 1.0;
        }
    }
    let mask = g.constant(tile);
    let diag = probs.mul(&mask).sum_axis(2); // [outer, K]
    diag.ln().neg().mean_all()
}

/// A trailing-dim linear shared with the task-embedding module. Read-only:
/// the weights must be materialized up front (see [`materialize_linear`]),
/// which is what lets concurrent forward passes share one `&ParamStore`.
pub(crate) fn layers_linear(
    ps: &ParamStore,
    g: &Graph,
    name: &str,
    x: &Var,
    in_dim: usize,
    out_dim: usize,
) -> Var {
    let w = ps.var_shared(g, &format!("{name}/w"), &[in_dim, out_dim]);
    let b = ps.var_shared(g, &format!("{name}/b"), &[out_dim]);
    x.matmul(&w).add_bias(&b)
}

/// Creates the weights of a [`layers_linear`] layer if absent. Call order
/// matters for reproducibility: the store's RNG hands out init draws in
/// creation order, so materializers must mirror the forward pass exactly.
pub fn materialize_linear(ps: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize) {
    ps.entry(&format!("{name}/w"), &[in_dim, out_dim], Init::Xavier);
    ps.entry(&format!("{name}/b"), &[out_dim], Init::Zeros);
}

/// Lazy-init variant used by modules that own their store mutably (TS2Vec).
pub(crate) fn layers_linear_init(
    ps: &mut ParamStore,
    g: &Graph,
    name: &str,
    x: &Var,
    in_dim: usize,
    out_dim: usize,
) -> Var {
    materialize_linear(ps, name, in_dim, out_dim);
    layers_linear(ps, g, name, x, in_dim, out_dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_data::{DatasetProfile, Domain};

    fn dataset() -> CtsData {
        DatasetProfile::custom("ts", Domain::Traffic, 4, 300, 24, 0.3, 0.1, 10.0, 1).generate(0)
    }

    #[test]
    fn encode_shape() {
        let mut enc = Ts2Vec::new(Ts2VecConfig::test(), 1);
        let w = Tensor::ones([3, 20, 1]);
        let e = enc.encode(&w);
        assert_eq!(e.shape(), &[3, 20, 8]);
        assert!(e.all_finite());
    }

    #[test]
    fn encoding_is_scale_invariant() {
        // z-normalization makes 10x-scaled windows embed identically.
        let mut enc = Ts2Vec::new(Ts2VecConfig::test(), 1);
        let ds = dataset();
        let mut w = Tensor::zeros([2, 16, 1]);
        for s in 0..2 {
            for t in 0..16 {
                *w.at_mut(&[s, t, 0]) = ds.value(s, t, 0);
            }
        }
        let scaled = w.map(|v| v * 10.0);
        let e1 = enc.encode(&w);
        let e2 = enc.encode(&scaled);
        let diff: f32 = e1.data().iter().zip(e2.data()).map(|(a, b)| (a - b).abs()).sum::<f32>()
            / e1.len() as f32;
        assert!(diff < 1e-4, "mean diff {diff}");
    }

    #[test]
    fn pretraining_reduces_contrastive_loss() {
        let ds = dataset();
        let mut enc = Ts2Vec::new(Ts2VecConfig { steps: 30, ..Ts2VecConfig::test() }, 1);

        // Measure alignment before/after: cosine similarity between the same
        // timestep seen from two crops should increase with training.
        let align = |enc: &mut Ts2Vec| -> f32 {
            let mut w1 = Tensor::zeros([2, 16, 1]);
            let mut w2 = Tensor::zeros([2, 16, 1]);
            for s in 0..2 {
                for t in 0..16 {
                    *w1.at_mut(&[s, t, 0]) = ds.value(s, t + 4, 0);
                    *w2.at_mut(&[s, t, 0]) = ds.value(s, t + 4, 0);
                }
            }
            let e1 = enc.encode(&w1);
            let e2 = enc.encode(&w2);
            let dot: f32 = e1.data().iter().zip(e2.data()).map(|(a, b)| a * b).sum();
            dot / (e1.norm() * e2.norm())
        };
        let before = align(&mut enc);
        enc.pretrain(&[&ds]);
        assert!(enc.is_trained());
        let after = align(&mut enc);
        // identical inputs always align perfectly; the real check is that
        // training ran without NaNs and weights stayed finite.
        assert!(enc.ps.all_finite());
        assert!(before.is_finite() && after.is_finite());
    }

    #[test]
    fn distinct_signals_embed_distinctly() {
        let mut enc = Ts2Vec::new(Ts2VecConfig::test(), 1);
        let ds = dataset();
        enc.pretrain(&[&ds]);
        let mut flat = Tensor::zeros([1, 16, 1]);
        let mut wave = Tensor::zeros([1, 16, 1]);
        for t in 0..16 {
            *flat.at_mut(&[0, t, 0]) = 1.0 + 0.01 * t as f32;
            *wave.at_mut(&[0, t, 0]) = (t as f32).sin() * 3.0;
        }
        let e1 = enc.encode(&flat);
        let e2 = enc.encode(&wave);
        assert_ne!(e1, e2);
    }
}
