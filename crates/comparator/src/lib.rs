//! # octs-comparator
//!
//! The Task-aware Architecture-Hyperparameter Comparator (T-AHC) of
//! AutoCTS+/AutoCTS++ (Section 3.2): a GIN encoder over dual arch-hyper
//! graphs, a TS2Vec-style frozen task encoder with a trainable two-stacked
//! Set-Transformer pooling (IntraSetPool / InterSetPool), a pairwise
//! classification head, and the curriculum pre-training pipeline of
//! Algorithm 1 (shared + random samples, early-validation labels, dynamic
//! pairing).
//!
//! With `task_aware = false` the model degrades gracefully to the plain AHC
//! of AutoCTS+ (per-task comparator without zero-shot transfer).

#![warn(missing_docs)]

pub mod ahc;
pub mod calibration;
pub mod gin;
pub mod pretrain;
pub mod stream;
pub mod task_embed;
pub mod ts2vec;

pub use ahc::{CacheStats, Tahc, TahcConfig};
pub use calibration::{calibrate, ranking_fidelity, CalibrationReport};
pub use gin::{gin_encode, materialize_gin, GinConfig};
pub use pretrain::{
    assemble_samples, collect_bank, collect_labels, dynamic_pairs, embed_tasks, label_one,
    label_units, pretrain_tahc, pretrain_tahc_labeled, shared_pool, task_label_units, LabelUnit,
    LabeledAh, LabeledBank, PretrainBank, PretrainConfig, PretrainReport, TahcTrainer,
    TahcTrainerState, TaskSamples,
};
pub use stream::{collect_labeled_bank, label_task};
pub use task_embed::{
    materialize_pool_task, pma, pool_task, EmbedKind, PoolKind, TaskEmbedConfig, TaskEmbedder,
};
pub use ts2vec::{materialize_linear, Ts2Vec, Ts2VecConfig};
