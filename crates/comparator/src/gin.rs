//! Graph Isomorphism Network encoder over arch-hyper graphs (Eq. 13–14).

use octs_space::{ArchHyperEncoding, HyperParams, OpKind, MAX_ENC_NODES};
use octs_tensor::{Graph, Init, ParamStore, Tensor, Var};

/// GIN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GinConfig {
    /// Number of GIN layers `L_n` (paper: 4).
    pub layers: usize,
    /// Hidden width `D` (paper: 128).
    pub dim: usize,
}

impl GinConfig {
    /// Paper-scale configuration.
    pub fn paper() -> Self {
        Self { layers: 4, dim: 128 }
    }

    /// CPU-scaled configuration used by the experiments here.
    pub fn scaled() -> Self {
        Self { layers: 2, dim: 32 }
    }
}

/// Creates every parameter [`gin_encode`] will read, in exactly the order
/// the forward pass visits them (the store's RNG makes order significant).
pub fn materialize_gin(ps: &mut ParamStore, name: &str, cfg: &GinConfig) {
    let dim = cfg.dim;
    ps.entry(&format!("{name}/we"), &[OpKind::COUNT, dim], Init::Xavier);
    ps.entry(&format!("{name}/wc"), &[HyperParams::R, dim], Init::Xavier);
    for layer in 0..cfg.layers {
        ps.entry(&format!("{name}/l{layer}/eps"), &[1], Init::Zeros);
        let mlp = format!("{name}/l{layer}/mlp");
        ps.entry(&format!("{mlp}/w1"), &[dim, dim], Init::Xavier);
        ps.entry(&format!("{mlp}/b1"), &[dim], Init::Zeros);
        ps.entry(&format!("{mlp}/w2"), &[dim, dim], Init::Xavier);
        ps.entry(&format!("{mlp}/b2"), &[dim], Init::Zeros);
    }
}

/// Builds the node feature matrix `F_a` (Eq. 7–8): operator one-hots through
/// `W_e`, the normalized hyper vector through `W_c`, zero padding after.
fn node_features(
    ps: &ParamStore,
    g: &Graph,
    name: &str,
    enc: &ArchHyperEncoding,
    dim: usize,
) -> Var {
    let we = ps.var_shared(g, &format!("{name}/we"), &[OpKind::COUNT, dim]);
    let wc = ps.var_shared(g, &format!("{name}/wc"), &[HyperParams::R, dim]);
    let one_hot = g.constant(Tensor::new([enc.num_ops, OpKind::COUNT], enc.op_one_hot()));
    let op_feats = one_hot.matmul(&we); // [num_ops, D]
    let hyper = g.constant(Tensor::new([1, HyperParams::R], enc.hyper_norm.to_vec()));
    let hyper_feat = hyper.matmul(&wc); // [1, D]
    let pad_rows = MAX_ENC_NODES - enc.num_active();
    if pad_rows > 0 {
        let pad = g.constant(Tensor::zeros([pad_rows, dim]));
        Var::concat(&[&op_feats, &hyper_feat, &pad], 0)
    } else {
        Var::concat(&[&op_feats, &hyper_feat], 0)
    }
}

/// Encodes an arch-hyper graph into a `[dim]` embedding: `L_n` GIN layers
/// `H^k = MLP^k((1+ε)·H^{k-1} + A·H^{k-1})`, read out at the Hyper node
/// (which connects to all operators, so it aggregates the whole graph).
///
/// Read-only over the store — call [`materialize_gin`] once beforehand.
pub fn gin_encode(
    ps: &ParamStore,
    g: &Graph,
    name: &str,
    enc: &ArchHyperEncoding,
    cfg: &GinConfig,
) -> Var {
    let dim = cfg.dim;
    let adj = g.constant(Tensor::new([MAX_ENC_NODES, MAX_ENC_NODES], enc.adj.clone()));
    let mut h = node_features(ps, g, name, enc, dim);
    for layer in 0..cfg.layers {
        let eps = ps.var_shared(g, &format!("{name}/l{layer}/eps"), &[1]);
        // (1 + eps) * H  — eps is a learnable scalar broadcast via mul_scalar
        // composition: H*(1) + H*eps
        let eps_row = eps.reshape([1]); // [1]
                                        // broadcast eps over all entries: H + H*eps (elementwise scalar mult)
        let h_eps = scale_by_scalar_var(g, &h, &eps_row);
        let agg = adj.matmul(&h).add(&h).add(&h_eps);
        let l1 = crate::gin::gin_mlp(ps, g, &format!("{name}/l{layer}/mlp"), &agg, dim);
        h = l1;
    }
    // Readout: the Hyper node's row.
    h.slice_axis(0, enc.hyper_index, 1).reshape([dim])
}

/// Two-layer MLP with ReLU used inside each GIN layer.
pub fn gin_mlp(ps: &ParamStore, g: &Graph, name: &str, x: &Var, dim: usize) -> Var {
    let w1 = ps.var_shared(g, &format!("{name}/w1"), &[dim, dim]);
    let b1 = ps.var_shared(g, &format!("{name}/b1"), &[dim]);
    let w2 = ps.var_shared(g, &format!("{name}/w2"), &[dim, dim]);
    let b2 = ps.var_shared(g, &format!("{name}/b2"), &[dim]);
    x.matmul(&w1).add_bias(&b1).relu().matmul(&w2).add_bias(&b2)
}

/// Multiplies every element of `x` by a learnable scalar var (shape `[1]`).
fn scale_by_scalar_var(g: &Graph, x: &Var, s: &Var) -> Var {
    // Expand s to x's shape by outer product with ones: cheap at our sizes.
    let shape = x.shape();
    let numel: usize = shape.iter().product();
    let ones = g.constant(Tensor::ones([numel, 1]));
    let s_col = s.reshape([1, 1]);
    let expanded = ones.matmul(&s_col).reshape(shape);
    x.mul(&expanded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_space::{ArchHyper, HyperSpace, JointSpace};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn encode_of(ah: &ArchHyper) -> ArchHyperEncoding {
        ah.encode(&HyperSpace::scaled())
    }

    #[test]
    fn embedding_shape_and_finiteness() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let space = JointSpace::scaled();
        let ah = space.sample(&mut rng);
        let g = Graph::new();
        let mut ps = ParamStore::new(0);
        materialize_gin(&mut ps, "gin", &GinConfig::scaled());
        let emb = gin_encode(&ps, &g, "gin", &encode_of(&ah), &GinConfig::scaled());
        assert_eq!(emb.shape(), vec![32]);
        assert!(emb.value().all_finite());
    }

    #[test]
    fn different_archhypers_different_embeddings() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let space = JointSpace::scaled();
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        let mut ps = ParamStore::new(0);
        materialize_gin(&mut ps, "gin", &GinConfig::scaled());
        let g = Graph::new();
        let ea = gin_encode(&ps, &g, "gin", &encode_of(&a), &GinConfig::scaled()).value();
        let eb = gin_encode(&ps, &g, "gin", &encode_of(&b), &GinConfig::scaled()).value();
        assert_ne!(ea, eb);
    }

    #[test]
    fn shared_weights_same_input_same_embedding() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let space = JointSpace::scaled();
        let a = space.sample(&mut rng);
        let mut ps = ParamStore::new(0);
        materialize_gin(&mut ps, "gin", &GinConfig::scaled());
        let g = Graph::new();
        let e1 = gin_encode(&ps, &g, "gin", &encode_of(&a), &GinConfig::scaled()).value();
        let e2 = gin_encode(&ps, &g, "gin", &encode_of(&a), &GinConfig::scaled()).value();
        assert_eq!(e1, e2);
    }

    #[test]
    fn hyperparameters_affect_embedding() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let space = JointSpace::scaled();
        let a = space.sample(&mut rng);
        let mut b = a.clone();
        b.hyper.h = if a.hyper.h == 8 { 16 } else { 8 };
        let mut ps = ParamStore::new(0);
        materialize_gin(&mut ps, "gin", &GinConfig::scaled());
        let g = Graph::new();
        let ea = gin_encode(&ps, &g, "gin", &encode_of(&a), &GinConfig::scaled()).value();
        let eb = gin_encode(&ps, &g, "gin", &encode_of(&b), &GinConfig::scaled()).value();
        assert_ne!(ea, eb, "hyper change must alter the embedding");
    }

    #[test]
    fn gradients_flow_to_feature_projections() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let space = JointSpace::scaled();
        let ah = space.sample(&mut rng);
        let g = Graph::new();
        let mut ps = ParamStore::new(0);
        materialize_gin(&mut ps, "gin", &GinConfig::scaled());
        let emb = gin_encode(&ps, &g, "gin", &encode_of(&ah), &GinConfig::scaled());
        g.backward(&emb.mean_all());
        let grads = g.param_grads();
        assert!(grads.iter().any(|(n, _)| n == "gin/we"));
        assert!(grads.iter().any(|(n, _)| n == "gin/wc"));
        assert!(grads.iter().any(|(n, _)| n.contains("/mlp/")));
    }
}
