//! The task-embedding module (Section 3.2.2): frozen preliminary embeddings
//! from TS2Vec plus the trainable two-stacked Set-Transformer pooling
//! (IntraSetPool / InterSetPool, Eq. 10–12).

use crate::ts2vec::{Ts2Vec, Ts2VecConfig};
use octs_data::{ForecastTask, Split};
use octs_tensor::{Graph, Init, ParamStore, Tensor, Var};
use serde::{Deserialize, Serialize};

/// How preliminary embeddings are produced (ablation `w/o TS2Vec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmbedKind {
    /// The TS2Vec-style contrastive encoder (default).
    Ts2Vec,
    /// A frozen random per-step MLP — no temporal context, the paper's
    /// ablation stand-in that "ignores the semantic information".
    Mlp,
}

/// How window embeddings are pooled into a task vector
/// (ablation `w/o Set-Transformer`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolKind {
    /// IntraSetPool + InterSetPool attention pooling (default).
    SetTransformer,
    /// Plain mean pooling over time and windows.
    MeanPool,
}

/// Configuration of the task-embedding pathway.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskEmbedConfig {
    /// Number of windows `{D_i}` sampled per task.
    pub windows: usize,
    /// Preliminary embedding source.
    pub embed: EmbedKind,
    /// Pooling variant.
    pub pool: PoolKind,
    /// Encoder output width `F'`.
    pub fprime: usize,
    /// IntraSetPool output width `F₁`.
    pub f1: usize,
    /// InterSetPool output width `F₂` (the task-vector width).
    pub f2: usize,
    /// Seed for the frozen encoder.
    pub seed: u64,
}

impl TaskEmbedConfig {
    /// CPU-scaled defaults (paper: F' 256, F₁ 256, F₂ 128).
    pub fn scaled() -> Self {
        Self {
            windows: 6,
            embed: EmbedKind::Ts2Vec,
            pool: PoolKind::SetTransformer,
            fprime: 16,
            f1: 32,
            f2: 16,
            seed: 0,
        }
    }

    /// Tiny defaults for unit tests.
    pub fn test() -> Self {
        Self {
            windows: 3,
            embed: EmbedKind::Ts2Vec,
            pool: PoolKind::SetTransformer,
            fprime: 8,
            f1: 8,
            f2: 8,
            seed: 0,
        }
    }
}

/// Produces *frozen* preliminary task embeddings: samples `W` windows of span
/// `P + Q` from the task's training region, encodes them (Eq. 9) and averages
/// over the `N` series (Eq. 10), yielding `[W, S, F']`.
///
/// `Clone` exists for the sharded pre-training workers: after
/// [`TaskEmbedder::pretrain_encoder`] the embedder is frozen
/// ([`TaskEmbedder::preliminary`] consumes no RNG), so cloned copies produce
/// byte-identical embeddings.
#[derive(Clone)]
pub struct TaskEmbedder {
    /// Configuration.
    pub cfg: TaskEmbedConfig,
    encoder: Ts2Vec,
    mlp_proj: Tensor,
}

impl TaskEmbedder {
    /// Builds an embedder. For [`EmbedKind::Ts2Vec`] the caller should
    /// [`TaskEmbedder::pretrain_encoder`] before embedding tasks.
    pub fn new(cfg: TaskEmbedConfig, ts_cfg: Ts2VecConfig, input_dim: usize) -> Self {
        assert_eq!(ts_cfg.dim, cfg.fprime, "encoder dim must match fprime");
        use rand::SeedableRng;
        let mut init_rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x4D31);
        let mlp_proj = octs_tensor::init::xavier([input_dim, cfg.fprime], &mut init_rng);
        Self { cfg, encoder: Ts2Vec::new(ts_cfg, input_dim), mlp_proj }
    }

    /// Pre-trains the TS2Vec encoder on the given datasets (no-op effect for
    /// the MLP ablation, which stays frozen-random).
    pub fn pretrain_encoder(&mut self, datasets: &[&octs_data::CtsData]) {
        if self.cfg.embed == EmbedKind::Ts2Vec {
            self.encoder.pretrain(datasets);
        }
    }

    /// Access to the underlying TS2Vec encoder (e.g. for checkpointing).
    pub fn encoder(&self) -> &Ts2Vec {
        &self.encoder
    }

    /// Mutable access to the underlying TS2Vec encoder.
    pub fn encoder_mut(&mut self) -> &mut Ts2Vec {
        &mut self.encoder
    }

    /// Preliminary embedding of a task: `[W, S, F']`, frozen.
    pub fn preliminary(&mut self, task: &ForecastTask) -> Tensor {
        let span = task.setting.span();
        let n = task.data.n();
        let f = task.data.f();
        let train_windows = task.windows(Split::Train);
        assert!(!train_windows.is_empty(), "task {} has no training windows", task.id());
        let w = self.cfg.windows;
        // evenly spread W window starts across the training region
        let starts: Vec<usize> = (0..w)
            .map(|i| {
                let idx = if w == 1 { 0 } else { i * (train_windows.len() - 1) / (w - 1) };
                train_windows[idx]
            })
            .collect();
        let mut out = Tensor::zeros([w, span, self.cfg.fprime]);
        for (wi, &start) in starts.iter().enumerate() {
            // window [N, S, F]
            let mut win = Tensor::zeros([n, span, f]);
            for s in 0..n {
                for t in 0..span {
                    for feat in 0..f {
                        *win.at_mut(&[s, t, feat]) = task.data.value(s, start + t, feat);
                    }
                }
            }
            let emb = match self.cfg.embed {
                EmbedKind::Ts2Vec => self.encoder.encode(&win), // [N, S, F']
                EmbedKind::Mlp => {
                    // frozen per-step projection of z-scored values
                    let normed = crate::ts2vec::znorm_window(&win);
                    let g = Graph::new();
                    let x = g.constant(normed.reshaped([n * span, f]));
                    let wmat = g.constant(self.mlp_proj.clone());
                    x.matmul(&wmat).tanh().value().reshaped([n, span, self.cfg.fprime])
                }
            };
            // Eq. 10: mean over the N series
            for t in 0..span {
                for d in 0..self.cfg.fprime {
                    let mut acc = 0.0f32;
                    for s in 0..n {
                        acc += emb.at(&[s, t, d]);
                    }
                    *out.at_mut(&[wi, t, d]) = acc / n as f32;
                }
            }
        }
        out
    }
}

/// Creates every parameter a [`pma`] call will read, in forward-pass order
/// (the store's RNG makes creation order significant).
pub fn materialize_pma(ps: &mut ParamStore, name: &str, d: usize) {
    ps.entry(&format!("{name}/seed"), &[1, d], Init::Normal(0.5));
    ps.entry(&format!("{name}/wq"), &[d, d], Init::Xavier);
    ps.entry(&format!("{name}/wk"), &[d, d], Init::Xavier);
    ps.entry(&format!("{name}/wv"), &[d, d], Init::Xavier);
    crate::ts2vec::materialize_linear(ps, &format!("{name}/ff1"), d, d);
    crate::ts2vec::materialize_linear(ps, &format!("{name}/ff2"), d, d);
}

/// Pooling-by-attention (Set-Transformer PMA, single head, single seed):
/// `x` is `[B, K, d]`; a learnable seed attends over the K elements, followed
/// by a residual feed-forward. Returns `[B, d]`.
///
/// Read-only over the store — call [`materialize_pma`] once beforehand.
pub fn pma(ps: &ParamStore, g: &Graph, name: &str, x: &Var, d: usize) -> Var {
    let b = x.shape()[0];
    let seed = ps.var_shared(g, &format!("{name}/seed"), &[1, d]);
    let wq = ps.var_shared(g, &format!("{name}/wq"), &[d, d]);
    let wk = ps.var_shared(g, &format!("{name}/wk"), &[d, d]);
    let wv = ps.var_shared(g, &format!("{name}/wv"), &[d, d]);
    let q = seed.matmul(&wq); // [1, d]
    let k = x.matmul(&wk); // [B, K, d]
    let v = x.matmul(&wv);
    let scores = q.matmul(&k.transpose()).mul_scalar(1.0 / (d as f32).sqrt()); // [B, 1, K]
    let attn = scores.softmax();
    let ctx = attn.matmul(&v).reshape([b, d]); // [B, d]
                                               // residual feed-forward
    let ff = crate::ts2vec::layers_linear(ps, g, &format!("{name}/ff1"), &ctx, d, d).relu();
    let ff2 = crate::ts2vec::layers_linear(ps, g, &format!("{name}/ff2"), &ff, d, d);
    ctx.add(&ff2)
}

/// Creates every parameter a [`pool_task`] call will read, in forward-pass
/// order (mirrors the branch taken for `cfg.pool`).
pub fn materialize_pool_task(ps: &mut ParamStore, name: &str, cfg: &TaskEmbedConfig) {
    match cfg.pool {
        PoolKind::SetTransformer => {
            crate::ts2vec::materialize_linear(ps, &format!("{name}/proj1"), cfg.fprime, cfg.f1);
            materialize_pma(ps, &format!("{name}/intra"), cfg.f1);
            crate::ts2vec::materialize_linear(ps, &format!("{name}/proj2"), cfg.f1, cfg.f2);
            materialize_pma(ps, &format!("{name}/inter"), cfg.f2);
        }
        PoolKind::MeanPool => {
            crate::ts2vec::materialize_linear(ps, &format!("{name}/lin"), cfg.fprime, cfg.f2);
        }
    }
}

/// The trainable pooling stack: preliminary embeddings `[W, S, F']` →
/// task vector `[F₂]` (Eq. 11–12). Parameters live in the T-AHC's store and
/// are optimized end-to-end with the comparator.
///
/// Read-only over the store — call [`materialize_pool_task`] once beforehand.
pub fn pool_task(
    ps: &ParamStore,
    g: &Graph,
    name: &str,
    prelim: &Tensor,
    cfg: &TaskEmbedConfig,
) -> Var {
    let x = g.constant(prelim.clone()); // [W, S, F']
    let w = prelim.shape()[0];
    match cfg.pool {
        PoolKind::SetTransformer => {
            // IntraSetPool: project F' -> F1, attention-pool over S -> [W, F1]
            let proj = crate::ts2vec::layers_linear(
                ps,
                g,
                &format!("{name}/proj1"),
                &x,
                cfg.fprime,
                cfg.f1,
            );
            let intra = pma(ps, g, &format!("{name}/intra"), &proj, cfg.f1); // [W, F1]
                                                                             // InterSetPool: [1, W, F1] -> project F1 -> F2 -> pool -> [F2]
            let inter_in = intra.reshape([1, w, cfg.f1]);
            let proj2 = crate::ts2vec::layers_linear(
                ps,
                g,
                &format!("{name}/proj2"),
                &inter_in,
                cfg.f1,
                cfg.f2,
            );
            pma(ps, g, &format!("{name}/inter"), &proj2, cfg.f2).reshape([cfg.f2])
        }
        PoolKind::MeanPool => {
            // mean over S, then W, then a linear to F2
            let m = x.mean_axis(1).mean_axis(0).reshape([1, cfg.fprime]);
            crate::ts2vec::layers_linear(ps, g, &format!("{name}/lin"), &m, cfg.fprime, cfg.f2)
                .reshape([cfg.f2])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_data::{DatasetProfile, Domain, ForecastSetting, ForecastTask};

    fn task(seed: u64) -> ForecastTask {
        let p = DatasetProfile::custom("emb", Domain::Traffic, 4, 260, 24, 0.3, 0.1, 10.0, seed);
        ForecastTask::new(p.generate(0), ForecastSetting::multi(6, 4), 0.6, 0.2, 1)
    }

    fn embedder(kind: EmbedKind) -> TaskEmbedder {
        let cfg = TaskEmbedConfig { embed: kind, ..TaskEmbedConfig::test() };
        TaskEmbedder::new(cfg, Ts2VecConfig::test(), 1)
    }

    #[test]
    fn preliminary_shape() {
        let mut e = embedder(EmbedKind::Ts2Vec);
        let t = task(1);
        let pe = e.preliminary(&t);
        assert_eq!(pe.shape(), &[3, 10, 8]); // W=3, S=P+Q=10, F'=8
        assert!(pe.all_finite());
    }

    #[test]
    fn different_settings_different_embeddings() {
        // Same dataset, different P/Q must give different preliminary shapes
        // (this is the paper's first design objective).
        let mut e = embedder(EmbedKind::Ts2Vec);
        let p = DatasetProfile::custom("emb", Domain::Traffic, 4, 400, 24, 0.3, 0.1, 10.0, 2);
        let t1 = ForecastTask::new(p.generate(0), ForecastSetting::multi(6, 4), 0.6, 0.2, 1);
        let t2 = ForecastTask::new(p.generate(0), ForecastSetting::multi(12, 8), 0.6, 0.2, 1);
        let e1 = e.preliminary(&t1);
        let e2 = e.preliminary(&t2);
        assert_ne!(e1.shape(), e2.shape());
    }

    #[test]
    fn mlp_variant_also_works() {
        let mut e = embedder(EmbedKind::Mlp);
        let t = task(3);
        let pe = e.preliminary(&t);
        assert_eq!(pe.shape(), &[3, 10, 8]);
        assert!(pe.all_finite());
    }

    #[test]
    fn pma_pools_to_batch_by_dim() {
        let g = Graph::new();
        let mut ps = ParamStore::new(0);
        let x = g.constant(Tensor::new([2, 5, 4], (0..40).map(|i| i as f32 * 0.01).collect()));
        materialize_pma(&mut ps, "p", 4);
        let y = pma(&ps, &g, "p", &x, 4);
        assert_eq!(y.shape(), vec![2, 4]);
    }

    #[test]
    fn pool_task_both_variants() {
        let mut e = embedder(EmbedKind::Ts2Vec);
        let t = task(4);
        let prelim = e.preliminary(&t);
        for pool in [PoolKind::SetTransformer, PoolKind::MeanPool] {
            let cfg = TaskEmbedConfig { pool, ..TaskEmbedConfig::test() };
            let g = Graph::new();
            let mut ps = ParamStore::new(0);
            materialize_pool_task(&mut ps, "pool", &cfg);
            let v = pool_task(&ps, &g, "pool", &prelim, &cfg);
            assert_eq!(v.shape(), vec![8], "{pool:?}");
            assert!(v.value().all_finite());
        }
    }

    #[test]
    fn pooling_is_trainable_end_to_end() {
        // Gradients must reach the PMA seed.
        let mut e = embedder(EmbedKind::Ts2Vec);
        let t = task(5);
        let prelim = e.preliminary(&t);
        let cfg = TaskEmbedConfig::test();
        let g = Graph::new();
        let mut ps = ParamStore::new(0);
        materialize_pool_task(&mut ps, "pool", &cfg);
        let v = pool_task(&ps, &g, "pool", &prelim, &cfg);
        g.backward(&v.mean_all());
        let grads = g.param_grads();
        assert!(grads.iter().any(|(n, _)| n == "pool/intra/seed"));
        assert!(grads.iter().any(|(n, _)| n == "pool/inter/seed"));
    }
}
