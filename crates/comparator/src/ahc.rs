//! The (Task-aware) Architecture-Hyperparameter Comparator (Section 3.2.3).
//!
//! Given a task representation and two arch-hypers, T-AHC outputs a logit
//! whose sign says which candidate forecasts more accurately on that task
//! (Eq. 15–21). With `task_aware = false` the task pathway is dropped and the
//! model reduces to the plain AHC of AutoCTS+ (one comparator per task).
//!
//! ## Concurrency and memoization
//!
//! Every parameter is materialized eagerly in [`Tahc::new`], so the forward
//! pass is read-only over the store ([`ParamStore::var_shared`]) and
//! inference ([`Tahc::compare`], [`Tahc::logit`]) takes `&self`. That is what
//! lets the search layer fan comparisons out across threads against one
//! shared comparator.
//!
//! On top of that, inference memoizes the two expensive sub-graphs:
//! - the GIN embedding of each candidate, keyed by the [`ArchHyper`] itself,
//!   so a candidate compared against `k` opponents is encoded once, not `k`
//!   times (a round-robin over `k` candidates drops from `O(k²)` to `O(k)`
//!   GIN forwards);
//! - the pooled-and-projected task pathway, keyed by a content hash of the
//!   preliminary embedding (one entry per task in practice).
//!
//! Training ([`Tahc::train_batch`]) still takes `&mut self` and invalidates
//! both caches after each optimizer step.

use crate::gin::{gin_encode, materialize_gin, GinConfig};
use crate::task_embed::{materialize_pool_task, pool_task, TaskEmbedConfig};
use crate::ts2vec::{layers_linear, materialize_linear};
use octs_space::{ArchHyper, HyperSpace};
use octs_tensor::{Graph, ParamStore, Tensor, Var};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

/// T-AHC architecture configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TahcConfig {
    /// GIN encoder configuration.
    pub gin: GinConfig,
    /// Task-embedding configuration.
    pub task: TaskEmbedConfig,
    /// Width of the FC layers after concatenation.
    pub fc_dim: usize,
    /// When false, the comparator ignores tasks entirely (plain AHC).
    pub task_aware: bool,
}

impl TahcConfig {
    /// CPU-scaled defaults.
    pub fn scaled() -> Self {
        Self {
            gin: GinConfig::scaled(),
            task: TaskEmbedConfig::scaled(),
            fc_dim: 32,
            task_aware: true,
        }
    }

    /// Tiny defaults for tests.
    pub fn test() -> Self {
        Self {
            gin: GinConfig { layers: 2, dim: 8 },
            task: TaskEmbedConfig::test(),
            fc_dim: 8,
            task_aware: true,
        }
    }
}

/// Hit/miss counters of one memoization cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that had to compute (and then stored) the value.
    pub misses: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0.0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe memoization cache for inference-time tensors.
///
/// Deterministic under races: values are pure functions of the (frozen
/// during inference) parameters, so two threads computing the same key
/// produce identical tensors and either insert wins.
struct MemoCache<K> {
    map: RwLock<HashMap<K, Tensor>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<K: Eq + Hash + Clone> MemoCache<K> {
    fn new() -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn get_or_compute(&self, key: &K, compute: impl FnOnce() -> Tensor) -> Tensor {
        if let Some(t) = self.map.read().expect("cache lock").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return t.clone();
        }
        let t = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map.write().expect("cache lock").entry(key.clone()).or_insert_with(|| t.clone());
        t
    }

    fn clear(&self) {
        self.map.write().expect("cache lock").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Content hash of a tensor (shape + f32 bit patterns) — the task-pathway
/// cache key. A 64-bit hash collision across the handful of distinct tasks a
/// search touches is vanishingly unlikely.
fn tensor_key(t: &Tensor) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hasher;
    let mut h = DefaultHasher::new();
    t.shape().hash(&mut h);
    for v in t.data() {
        v.to_bits().hash(&mut h);
    }
    h.finish()
}

/// The comparator model. Owns its parameters; every call builds a fresh
/// autograd graph (train) or runs grad-free (inference).
pub struct Tahc {
    /// Configuration.
    pub cfg: TahcConfig,
    /// All trainable parameters (GIN + pooling + FC stack).
    pub ps: ParamStore,
    space: HyperSpace,
    embed_cache: MemoCache<ArchHyper>,
    task_cache: MemoCache<u64>,
}

impl Tahc {
    /// Creates an untrained comparator over the given hyperparameter space
    /// (needed to normalize hyper vectors consistently).
    ///
    /// All parameters are materialized here, in the exact order the original
    /// lazy-initializing forward pass created them (the store's RNG hands out
    /// init draws in creation order, so this keeps seeded weights identical
    /// to the historical behaviour).
    pub fn new(cfg: TahcConfig, space: HyperSpace, seed: u64) -> Self {
        let mut ps = ParamStore::new(seed);
        materialize_gin(&mut ps, "gin", &cfg.gin);
        materialize_linear(&mut ps, "fc_l", 2 * cfg.gin.dim, cfg.fc_dim);
        if cfg.task_aware {
            materialize_pool_task(&mut ps, "taskpool", &cfg.task);
            materialize_linear(&mut ps, "fc_e", cfg.task.f2, cfg.fc_dim);
        }
        let in_dim = if cfg.task_aware { 2 * cfg.fc_dim } else { cfg.fc_dim };
        materialize_linear(&mut ps, "cls/fc1", in_dim, cfg.fc_dim);
        materialize_linear(&mut ps, "cls/fc2", cfg.fc_dim, 1);
        Self { cfg, ps, space, embed_cache: MemoCache::new(), task_cache: MemoCache::new() }
    }

    /// The hyperparameter space encodings are normalized against.
    pub fn space(&self) -> &HyperSpace {
        &self.space
    }

    /// Drops all memoized embeddings. Must be called whenever `ps` changes
    /// (done automatically by [`Tahc::train_batch`]; call it yourself if you
    /// assign to the public `ps` field directly).
    pub fn invalidate_caches(&self) {
        self.embed_cache.clear();
        self.task_cache.clear();
    }

    /// Hit/miss counters of the per-candidate GIN embedding cache.
    pub fn embed_cache_stats(&self) -> CacheStats {
        self.embed_cache.stats()
    }

    /// Hit/miss counters of the task-pathway cache.
    pub fn task_cache_stats(&self) -> CacheStats {
        self.task_cache.stats()
    }

    /// Builds the pooled-and-projected task pathway `Ẽ'` (Eq. 12 + 18).
    fn task_path(&self, g: &Graph, prelim: &Tensor) -> Var {
        let pooled = pool_task(&self.ps, g, "taskpool", prelim, &self.cfg.task); // [F2]
        let x = pooled.reshape([1, self.cfg.task.f2]);
        layers_linear(&self.ps, g, "fc_e", &x, self.cfg.task.f2, self.cfg.fc_dim).relu()
    }

    /// The candidate's GIN embedding `[dim]`, memoized across comparisons.
    /// Grad-free: use inside inference only.
    pub fn embedding(&self, ah: &ArchHyper) -> Tensor {
        self.embed_cache.get_or_compute(ah, || {
            let g = Graph::new();
            let enc = ah.encode(&self.space);
            gin_encode(&self.ps, &g, "gin", &enc, &self.cfg.gin).value()
        })
    }

    /// The fused task pathway `[1, fc_dim]`, memoized by content hash of the
    /// preliminary embedding. Grad-free: use inside inference only.
    fn task_path_cached(&self, prelim: &Tensor) -> Tensor {
        self.task_cache.get_or_compute(&tensor_key(prelim), || {
            let g = Graph::new();
            self.task_path(&g, prelim).value()
        })
    }

    /// Full forward to a logit: positive ⇒ `a` is the better (lower-error)
    /// arch-hyper for the task. Builds the whole graph (no memoization) so
    /// gradients reach every parameter — this is the training path.
    pub fn logit(&self, g: &Graph, prelim: Option<&Tensor>, a: &ArchHyper, b: &ArchHyper) -> Var {
        let enc_a = a.encode(&self.space);
        let enc_b = b.encode(&self.space);
        let la =
            gin_encode(&self.ps, g, "gin", &enc_a, &self.cfg.gin).reshape([1, self.cfg.gin.dim]);
        let lb =
            gin_encode(&self.ps, g, "gin", &enc_b, &self.cfg.gin).reshape([1, self.cfg.gin.dim]);
        let pair = Var::concat(&[&la, &lb], 1); // [1, 2D]
        let pair_fc =
            layers_linear(&self.ps, g, "fc_l", &pair, 2 * self.cfg.gin.dim, self.cfg.fc_dim).relu();

        let fused = if self.cfg.task_aware {
            let prelim = prelim.expect("task-aware comparator needs a task embedding");
            let task = self.task_path(g, prelim);
            Var::concat(&[&pair_fc, &task], 1) // [1, 2*fc]
        } else {
            pair_fc
        };
        self.head(g, &fused)
    }

    /// The shared classification head: fused features → scalar logit.
    fn head(&self, g: &Graph, fused: &Var) -> Var {
        let in_dim = if self.cfg.task_aware { 2 * self.cfg.fc_dim } else { self.cfg.fc_dim };
        let h = layers_linear(&self.ps, g, "cls/fc1", fused, in_dim, self.cfg.fc_dim).relu();
        layers_linear(&self.ps, g, "cls/fc2", &h, self.cfg.fc_dim, 1).reshape([1])
    }

    /// Grad-free logit using the memoized candidate embeddings and task
    /// pathway. Numerically identical to [`Tahc::logit`] (same ops, same
    /// order) but each candidate's GIN forward runs once per search, not once
    /// per comparison.
    pub fn infer_logit(&self, prelim: Option<&Tensor>, a: &ArchHyper, b: &ArchHyper) -> f32 {
        let ea = self.embedding(a);
        let eb = self.embedding(b);
        let g = Graph::new();
        let la = g.constant(ea.reshaped([1, self.cfg.gin.dim]));
        let lb = g.constant(eb.reshaped([1, self.cfg.gin.dim]));
        let pair = Var::concat(&[&la, &lb], 1);
        let pair_fc =
            layers_linear(&self.ps, &g, "fc_l", &pair, 2 * self.cfg.gin.dim, self.cfg.fc_dim)
                .relu();
        let fused = if self.cfg.task_aware {
            let prelim = prelim.expect("task-aware comparator needs a task embedding");
            let task = g.constant(self.task_path_cached(prelim));
            Var::concat(&[&pair_fc, &task], 1)
        } else {
            pair_fc
        };
        self.head(&g, &fused).value().item()
    }

    /// The pooled task representation `E'` (Eq. 12) as a plain tensor —
    /// used by the task-similarity visualization (Fig. 6).
    pub fn task_vector(&self, prelim: &Tensor) -> Tensor {
        let g = Graph::new();
        pool_task(&self.ps, &g, "taskpool", prelim, &self.cfg.task).value()
    }

    /// Inference: does `a` beat `b` on the task? (Eq. 21 with threshold 0.5
    /// on the sigmoid ⇔ logit > 0.) Takes `&self` and memoizes, so the search
    /// layer can issue comparisons from many threads concurrently.
    pub fn compare(&self, prelim: Option<&Tensor>, a: &ArchHyper, b: &ArchHyper) -> bool {
        self.infer_logit(prelim, a, b) > 0.0
    }

    /// One BCE training step over a batch of labelled comparisons.
    ///
    /// Each element is `(preliminary embedding, a, b, y)` with `y = 1` when
    /// `a` is the better candidate. Returns the mean BCE loss.
    pub fn train_batch(
        &mut self,
        opt: &mut octs_tensor::Adam,
        batch: &[(Option<&Tensor>, &ArchHyper, &ArchHyper, f32)],
    ) -> f32 {
        assert!(!batch.is_empty());
        let g = Graph::new();
        let mut total: Option<Var> = None;
        for (prelim, a, b, y) in batch {
            let z = self.logit(&g, *prelim, a, b);
            let loss = z.bce_with_logits(&Tensor::scalar(*y));
            total = Some(match total {
                Some(t) => t.add(&loss),
                None => loss,
            });
        }
        let loss = total.expect("nonempty batch").mul_scalar(1.0 / batch.len() as f32);
        let out = loss.value().item();
        g.backward(&loss);
        let mut grads = g.param_grads();
        octs_tensor::clip_grad_norm(&mut grads, 5.0);
        opt.step(&mut self.ps, &grads);
        // Weights moved: every memoized embedding is stale.
        self.invalidate_caches();
        out
    }

    /// Classification accuracy on held-out labelled comparisons.
    pub fn accuracy(&self, samples: &[(Option<&Tensor>, &ArchHyper, &ArchHyper, f32)]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for (prelim, a, b, y) in samples {
            let pred = self.compare(*prelim, a, b);
            if pred == (*y > 0.5) {
                correct += 1;
            }
        }
        correct as f32 / samples.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_space::JointSpace;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (Tahc, Vec<ArchHyper>, Tensor) {
        let space = JointSpace::scaled();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ahs = space.sample_distinct(8, &mut rng);
        let tahc = Tahc::new(TahcConfig::test(), space.hyper.clone(), 0);
        let prelim = Tensor::new([3, 10, 8], (0..240).map(|i| (i % 13) as f32 * 0.05).collect());
        (tahc, ahs, prelim)
    }

    #[test]
    fn logit_is_scalar_and_finite() {
        let (t, ahs, prelim) = fixture();
        let g = Graph::new();
        let z = t.logit(&g, Some(&prelim), &ahs[0], &ahs[1]);
        assert_eq!(z.shape(), vec![1]);
        assert!(z.value().item().is_finite());
    }

    #[test]
    fn non_task_aware_mode_ignores_task() {
        let space = JointSpace::scaled();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ahs = space.sample_distinct(2, &mut rng);
        let cfg = TahcConfig { task_aware: false, ..TahcConfig::test() };
        let t = Tahc::new(cfg, space.hyper.clone(), 0);
        // must not panic without a task embedding
        let _ = t.compare(None, &ahs[0], &ahs[1]);
    }

    #[test]
    fn comparator_learns_a_simple_rule() {
        // Synthetic labels: prefer smaller hidden dimension H. A learnable
        // rule that only depends on the hyper features.
        let (mut t, ahs, prelim) = fixture();
        let mut opt = octs_tensor::Adam::new(5e-3, 0.0);
        let mut pairs = Vec::new();
        for i in 0..ahs.len() {
            for j in 0..ahs.len() {
                if i != j && ahs[i].hyper.h != ahs[j].hyper.h {
                    let y = if ahs[i].hyper.h < ahs[j].hyper.h { 1.0 } else { 0.0 };
                    pairs.push((i, j, y));
                }
            }
        }
        assert!(pairs.len() >= 10);
        for _epoch in 0..30 {
            let batch: Vec<_> =
                pairs.iter().map(|&(i, j, y)| (Some(&prelim), &ahs[i], &ahs[j], y)).collect();
            t.train_batch(&mut opt, &batch);
        }
        let eval: Vec<_> =
            pairs.iter().map(|&(i, j, y)| (Some(&prelim), &ahs[i], &ahs[j], y)).collect();
        let acc = t.accuracy(&eval);
        assert!(acc > 0.85, "train accuracy {acc}");
    }

    #[test]
    fn training_reduces_loss() {
        let (mut t, ahs, prelim) = fixture();
        let mut opt = octs_tensor::Adam::new(5e-3, 0.0);
        let batch: Vec<_> = vec![
            (Some(&prelim), &ahs[0], &ahs[1], 1.0),
            (Some(&prelim), &ahs[1], &ahs[0], 0.0),
            (Some(&prelim), &ahs[2], &ahs[3], 1.0),
            (Some(&prelim), &ahs[3], &ahs[2], 0.0),
        ];
        let first = t.train_batch(&mut opt, &batch);
        let mut last = first;
        for _ in 0..20 {
            last = t.train_batch(&mut opt, &batch);
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn comparison_is_deterministic() {
        let (t, ahs, prelim) = fixture();
        let a = t.compare(Some(&prelim), &ahs[0], &ahs[1]);
        let b = t.compare(Some(&prelim), &ahs[0], &ahs[1]);
        assert_eq!(a, b);
    }

    #[test]
    fn cached_inference_matches_training_logit() {
        // The memoized inference path must produce the same logit as the full
        // autograd graph used in training.
        let (t, ahs, prelim) = fixture();
        for (i, j) in [(0, 1), (2, 3), (4, 5)] {
            let g = Graph::new();
            let full = t.logit(&g, Some(&prelim), &ahs[i], &ahs[j]).value().item();
            let cached = t.infer_logit(Some(&prelim), &ahs[i], &ahs[j]);
            assert_eq!(full, cached, "pair ({i},{j})");
        }
    }

    #[test]
    fn embedding_computed_exactly_once_across_comparisons() {
        let (t, ahs, prelim) = fixture();
        // 0 plays every other candidate, twice.
        for _ in 0..2 {
            for other in &ahs[1..] {
                t.compare(Some(&prelim), &ahs[0], other);
            }
        }
        let stats = t.embed_cache_stats();
        // One miss per distinct candidate; everything else served cached.
        assert_eq!(stats.misses, ahs.len(), "each embedding computed once, got {stats:?}");
        assert_eq!(stats.hits, 2 * 2 * (ahs.len() - 1) - ahs.len(), "{stats:?}");
        // The task pathway was computed once for the single task.
        assert_eq!(t.task_cache_stats().misses, 1);
    }

    #[test]
    fn training_invalidates_caches() {
        let (mut t, ahs, prelim) = fixture();
        let before = t.infer_logit(Some(&prelim), &ahs[0], &ahs[1]);
        assert!(t.embed_cache_stats().misses > 0);
        let mut opt = octs_tensor::Adam::new(5e-2, 0.0);
        let batch: Vec<_> = vec![(Some(&prelim), &ahs[0], &ahs[1], 0.0)];
        for _ in 0..5 {
            t.train_batch(&mut opt, &batch);
        }
        // Caches were cleared, and the logit reflects the new weights.
        assert_eq!(t.embed_cache_stats(), CacheStats::default());
        let after = t.infer_logit(Some(&prelim), &ahs[0], &ahs[1]);
        assert_ne!(before, after, "stale cache would freeze the logit");
    }

    #[test]
    fn concurrent_comparisons_agree_with_serial() {
        let space = JointSpace::scaled();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ahs = space.sample_distinct(8, &mut rng);
        let cfg = TahcConfig { task_aware: false, ..TahcConfig::test() };
        let t = Tahc::new(cfg, space.hyper.clone(), 0);
        let serial: Vec<bool> = (0..ahs.len())
            .flat_map(|i| (0..ahs.len()).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .map(|(i, j)| t.compare(None, &ahs[i], &ahs[j]))
            .collect();
        t.invalidate_caches();
        let pairs: Vec<(usize, usize)> = (0..ahs.len())
            .flat_map(|i| (0..ahs.len()).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .collect();
        let threaded: Vec<bool> = std::thread::scope(|s| {
            let chunks: Vec<_> = pairs.chunks(pairs.len().div_ceil(4)).collect();
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let t = &t;
                    let ahs = &ahs;
                    s.spawn(move || {
                        chunk
                            .iter()
                            .map(|&(i, j)| t.compare(None, &ahs[i], &ahs[j]))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(serial, threaded);
    }
}
