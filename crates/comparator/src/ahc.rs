//! The (Task-aware) Architecture-Hyperparameter Comparator (Section 3.2.3).
//!
//! Given a task representation and two arch-hypers, T-AHC outputs a logit
//! whose sign says which candidate forecasts more accurately on that task
//! (Eq. 15–21). With `task_aware = false` the task pathway is dropped and the
//! model reduces to the plain AHC of AutoCTS+ (one comparator per task).

use crate::gin::{gin_encode, GinConfig};
use crate::task_embed::{pool_task, TaskEmbedConfig};
use octs_space::{ArchHyper, HyperSpace};
use octs_tensor::{Graph, ParamStore, Tensor, Var};
use serde::{Deserialize, Serialize};

/// T-AHC architecture configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TahcConfig {
    /// GIN encoder configuration.
    pub gin: GinConfig,
    /// Task-embedding configuration.
    pub task: TaskEmbedConfig,
    /// Width of the FC layers after concatenation.
    pub fc_dim: usize,
    /// When false, the comparator ignores tasks entirely (plain AHC).
    pub task_aware: bool,
}

impl TahcConfig {
    /// CPU-scaled defaults.
    pub fn scaled() -> Self {
        Self { gin: GinConfig::scaled(), task: TaskEmbedConfig::scaled(), fc_dim: 32, task_aware: true }
    }

    /// Tiny defaults for tests.
    pub fn test() -> Self {
        Self { gin: GinConfig { layers: 2, dim: 8 }, task: TaskEmbedConfig::test(), fc_dim: 8, task_aware: true }
    }
}

/// The comparator model. Owns its parameters; every call builds a fresh
/// autograd graph (train) or runs grad-free (inference).
pub struct Tahc {
    /// Configuration.
    pub cfg: TahcConfig,
    /// All trainable parameters (GIN + pooling + FC stack).
    pub ps: ParamStore,
    space: HyperSpace,
}

impl Tahc {
    /// Creates an untrained comparator over the given hyperparameter space
    /// (needed to normalize hyper vectors consistently).
    pub fn new(cfg: TahcConfig, space: HyperSpace, seed: u64) -> Self {
        Self { cfg, ps: ParamStore::new(seed), space }
    }

    /// The hyperparameter space encodings are normalized against.
    pub fn space(&self) -> &HyperSpace {
        &self.space
    }

    /// Builds the pooled-and-projected task pathway `Ẽ'` (Eq. 12 + 18).
    fn task_path(&mut self, g: &Graph, prelim: &Tensor) -> Var {
        let pooled = pool_task(&mut self.ps, g, "taskpool", prelim, &self.cfg.task); // [F2]
        let x = pooled.reshape([1, self.cfg.task.f2]);
        crate::ts2vec::layers_linear(&mut self.ps, g, "fc_e", &x, self.cfg.task.f2, self.cfg.fc_dim)
            .relu()
    }

    /// Full forward to a logit: positive ⇒ `a` is the better (lower-error)
    /// arch-hyper for the task.
    pub fn logit(&mut self, g: &Graph, prelim: Option<&Tensor>, a: &ArchHyper, b: &ArchHyper) -> Var {
        let enc_a = a.encode(&self.space);
        let enc_b = b.encode(&self.space);
        let la = gin_encode(&mut self.ps, g, "gin", &enc_a, &self.cfg.gin).reshape([1, self.cfg.gin.dim]);
        let lb = gin_encode(&mut self.ps, g, "gin", &enc_b, &self.cfg.gin).reshape([1, self.cfg.gin.dim]);
        let pair = Var::concat(&[&la, &lb], 1); // [1, 2D]
        let pair_fc = crate::ts2vec::layers_linear(
            &mut self.ps,
            g,
            "fc_l",
            &pair,
            2 * self.cfg.gin.dim,
            self.cfg.fc_dim,
        )
        .relu();

        let fused = if self.cfg.task_aware {
            let prelim = prelim.expect("task-aware comparator needs a task embedding");
            let task = self.task_path(g, prelim);
            Var::concat(&[&pair_fc, &task], 1) // [1, 2*fc]
        } else {
            pair_fc
        };
        let in_dim = if self.cfg.task_aware { 2 * self.cfg.fc_dim } else { self.cfg.fc_dim };
        let h = crate::ts2vec::layers_linear(&mut self.ps, g, "cls/fc1", &fused, in_dim, self.cfg.fc_dim)
            .relu();
        crate::ts2vec::layers_linear(&mut self.ps, g, "cls/fc2", &h, self.cfg.fc_dim, 1).reshape([1])
    }

    /// The pooled task representation `E'` (Eq. 12) as a plain tensor —
    /// used by the task-similarity visualization (Fig. 6).
    pub fn task_vector(&mut self, prelim: &Tensor) -> Tensor {
        let g = Graph::new();
        pool_task(&mut self.ps, &g, "taskpool", prelim, &self.cfg.task).value()
    }

    /// Inference: does `a` beat `b` on the task? (Eq. 21 with threshold 0.5
    /// on the sigmoid ⇔ logit > 0.)
    pub fn compare(&mut self, prelim: Option<&Tensor>, a: &ArchHyper, b: &ArchHyper) -> bool {
        let g = Graph::new();
        let z = self.logit(&g, prelim, a, b);
        z.value().item() > 0.0
    }

    /// One BCE training step over a batch of labelled comparisons.
    ///
    /// Each element is `(preliminary embedding, a, b, y)` with `y = 1` when
    /// `a` is the better candidate. Returns the mean BCE loss.
    pub fn train_batch(
        &mut self,
        opt: &mut octs_tensor::Adam,
        batch: &[(Option<&Tensor>, &ArchHyper, &ArchHyper, f32)],
    ) -> f32 {
        assert!(!batch.is_empty());
        let g = Graph::new();
        let mut total: Option<Var> = None;
        for (prelim, a, b, y) in batch {
            let z = self.logit(&g, *prelim, a, b);
            let loss = z.bce_with_logits(&Tensor::scalar(*y));
            total = Some(match total {
                Some(t) => t.add(&loss),
                None => loss,
            });
        }
        let loss = total.expect("nonempty batch").mul_scalar(1.0 / batch.len() as f32);
        let out = loss.value().item();
        g.backward(&loss);
        let mut grads = g.param_grads();
        octs_tensor::clip_grad_norm(&mut grads, 5.0);
        opt.step(&mut self.ps, &grads);
        out
    }

    /// Classification accuracy on held-out labelled comparisons.
    pub fn accuracy(&mut self, samples: &[(Option<&Tensor>, &ArchHyper, &ArchHyper, f32)]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for (prelim, a, b, y) in samples {
            let pred = self.compare(*prelim, a, b);
            if pred == (*y > 0.5) {
                correct += 1;
            }
        }
        correct as f32 / samples.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octs_space::JointSpace;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (Tahc, Vec<ArchHyper>, Tensor) {
        let space = JointSpace::scaled();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ahs = space.sample_distinct(8, &mut rng);
        let tahc = Tahc::new(TahcConfig::test(), space.hyper.clone(), 0);
        let prelim = Tensor::new([3, 10, 8], (0..240).map(|i| (i % 13) as f32 * 0.05).collect());
        (tahc, ahs, prelim)
    }

    #[test]
    fn logit_is_scalar_and_finite() {
        let (mut t, ahs, prelim) = fixture();
        let g = Graph::new();
        let z = t.logit(&g, Some(&prelim), &ahs[0], &ahs[1]);
        assert_eq!(z.shape(), vec![1]);
        assert!(z.value().item().is_finite());
    }

    #[test]
    fn non_task_aware_mode_ignores_task() {
        let space = JointSpace::scaled();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ahs = space.sample_distinct(2, &mut rng);
        let cfg = TahcConfig { task_aware: false, ..TahcConfig::test() };
        let mut t = Tahc::new(cfg, space.hyper.clone(), 0);
        // must not panic without a task embedding
        let _ = t.compare(None, &ahs[0], &ahs[1]);
    }

    #[test]
    fn comparator_learns_a_simple_rule() {
        // Synthetic labels: prefer smaller hidden dimension H. A learnable
        // rule that only depends on the hyper features.
        let (mut t, ahs, prelim) = fixture();
        let mut opt = octs_tensor::Adam::new(5e-3, 0.0);
        let mut pairs = Vec::new();
        for i in 0..ahs.len() {
            for j in 0..ahs.len() {
                if i != j && ahs[i].hyper.h != ahs[j].hyper.h {
                    let y = if ahs[i].hyper.h < ahs[j].hyper.h { 1.0 } else { 0.0 };
                    pairs.push((i, j, y));
                }
            }
        }
        assert!(pairs.len() >= 10);
        for _epoch in 0..30 {
            let batch: Vec<_> =
                pairs.iter().map(|&(i, j, y)| (Some(&prelim), &ahs[i], &ahs[j], y)).collect();
            t.train_batch(&mut opt, &batch);
        }
        let eval: Vec<_> = pairs.iter().map(|&(i, j, y)| (Some(&prelim), &ahs[i], &ahs[j], y)).collect();
        let acc = t.accuracy(&eval);
        assert!(acc > 0.85, "train accuracy {acc}");
    }

    #[test]
    fn training_reduces_loss() {
        let (mut t, ahs, prelim) = fixture();
        let mut opt = octs_tensor::Adam::new(5e-3, 0.0);
        let batch: Vec<_> = vec![
            (Some(&prelim), &ahs[0], &ahs[1], 1.0),
            (Some(&prelim), &ahs[1], &ahs[0], 0.0),
            (Some(&prelim), &ahs[2], &ahs[3], 1.0),
            (Some(&prelim), &ahs[3], &ahs[2], 0.0),
        ];
        let first = t.train_batch(&mut opt, &batch);
        let mut last = first;
        for _ in 0..20 {
            last = t.train_batch(&mut opt, &batch);
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn comparison_is_deterministic() {
        let (mut t, ahs, prelim) = fixture();
        let a = t.compare(Some(&prelim), &ahs[0], &ahs[1]);
        let b = t.compare(Some(&prelim), &ahs[0], &ahs[1]);
        assert_eq!(a, b);
    }
}
