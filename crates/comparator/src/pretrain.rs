//! T-AHC pre-training (Section 3.2.4, Algorithm 1): label collection with the
//! early-validation proxy, shared + random samples, data-level curriculum and
//! dynamic pairing.

use crate::ahc::Tahc;
use crate::task_embed::TaskEmbedder;
use octs_data::ForecastTask;
use octs_model::{early_validation, TrainConfig};
use octs_space::{ArchHyper, JointSpace};
use octs_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// An arch-hyper with its early-validation score `R'` (lower = better).
#[derive(Debug, Clone)]
pub struct LabeledAh {
    /// The candidate.
    pub ah: ArchHyper,
    /// Early-validation MAE (scaled units).
    pub score: f32,
}

/// Labelled samples for one pre-training task.
#[derive(Debug, Clone)]
pub struct TaskSamples {
    /// The `L` arch-hypers shared across *all* tasks (easy knowledge: lets
    /// T-AHC read task similarity off a common yardstick).
    pub shared: Vec<LabeledAh>,
    /// The `L` task-specific random arch-hypers (hard knowledge).
    pub random: Vec<LabeledAh>,
}

/// Everything the pre-training loop consumes.
pub struct PretrainBank {
    /// The pre-training tasks.
    pub tasks: Vec<ForecastTask>,
    /// Frozen preliminary embeddings, one `[W, S, F']` tensor per task.
    pub prelims: Vec<Tensor>,
    /// Labelled samples per task.
    pub samples: Vec<TaskSamples>,
}

/// Pre-training knobs.
#[derive(Debug, Clone)]
pub struct PretrainConfig {
    /// Shared sample count `L` per task.
    pub l_shared: usize,
    /// Random sample count `L` per task.
    pub l_random: usize,
    /// Training epochs `k_t`.
    pub epochs: usize,
    /// Pairs per comparator batch.
    pub batch: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Adam weight decay (paper: 5e-4).
    pub weight_decay: f32,
    /// Curriculum increment: how many random samples join per epoch (Δ).
    pub curriculum_step: usize,
    /// Configuration of the early-validation labelling runs (k epochs).
    pub label_cfg: TrainConfig,
    /// RNG seed.
    pub seed: u64,
}

impl PretrainConfig {
    /// CPU-scaled defaults.
    pub fn scaled() -> Self {
        Self {
            l_shared: 8,
            l_random: 8,
            epochs: 12,
            batch: 16,
            lr: 1e-3,
            weight_decay: 5e-4,
            curriculum_step: 1,
            label_cfg: TrainConfig::early_validation(),
            seed: 0,
        }
    }

    /// Tiny defaults for tests.
    pub fn test() -> Self {
        Self {
            l_shared: 4,
            l_random: 4,
            epochs: 3,
            batch: 8,
            lr: 2e-3,
            weight_decay: 0.0,
            curriculum_step: 2,
            label_cfg: TrainConfig::test(),
            seed: 0,
        }
    }
}

/// Labels shared + per-task random arch-hypers with the early-validation
/// proxy (parallel over candidates). This is the expensive phase of bank
/// collection and is *embedder-independent*, so ablation studies run it once
/// and share the result across comparator variants.
pub fn collect_labels(
    tasks: &[ForecastTask],
    space: &JointSpace,
    cfg: &PretrainConfig,
) -> Vec<TaskSamples> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let shared_pool = space.sample_distinct(cfg.l_shared.max(1), &mut rng);
    let shared_pool = &shared_pool[..cfg.l_shared];
    tasks
        .iter()
        .enumerate()
        .map(|(ti, task)| {
            let mut trng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (ti as u64 + 1) << 8);
            let randoms = space.sample_distinct(cfg.l_random, &mut trng);
            let label = |ahs: &[ArchHyper]| -> Vec<LabeledAh> {
                ahs.par_iter()
                    .map(|ah| LabeledAh {
                        ah: ah.clone(),
                        score: early_validation(ah, task, &cfg.label_cfg),
                    })
                    .collect()
            };
            TaskSamples { shared: label(shared_pool), random: label(&randoms) }
        })
        .collect()
}

/// Precomputes the frozen preliminary embedding of every task.
pub fn embed_tasks(tasks: &[ForecastTask], embedder: &mut TaskEmbedder) -> Vec<Tensor> {
    tasks.iter().map(|t| embedder.preliminary(t)).collect()
}

/// Collects the pre-training bank: samples shared and per-task random
/// arch-hypers, labels each with the early-validation proxy (parallel over
/// candidates), and precomputes preliminary task embeddings.
pub fn collect_bank(
    tasks: Vec<ForecastTask>,
    embedder: &mut TaskEmbedder,
    space: &JointSpace,
    cfg: &PretrainConfig,
) -> PretrainBank {
    let prelims = embed_tasks(&tasks, embedder);
    let samples = collect_labels(&tasks, space, cfg);
    PretrainBank { tasks, prelims, samples }
}

/// Outcome of pre-training.
#[derive(Debug, Clone)]
pub struct PretrainReport {
    /// Mean BCE loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Pairwise classification accuracy on freshly-paired held-out
    /// comparisons after training.
    pub holdout_accuracy: f32,
}

/// Builds dynamically-paired comparisons from a pool of labelled samples:
/// shuffles, pairs consecutive entries, labels by score order, and drops
/// near-ties that carry no ranking signal.
pub fn dynamic_pairs<'a>(
    pool: &'a [LabeledAh],
    rng: &mut ChaCha8Rng,
) -> Vec<(&'a ArchHyper, &'a ArchHyper, f32)> {
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    idx.shuffle(rng);
    let mut out = Vec::new();
    for pair in idx.chunks_exact(2) {
        let (a, b) = (&pool[pair[0]], &pool[pair[1]]);
        if (a.score - b.score).abs() < 1e-6 {
            continue;
        }
        let y = if a.score < b.score { 1.0 } else { 0.0 };
        out.push((&a.ah, &b.ah, y));
    }
    out
}

/// Algorithm 1: curriculum pre-training of T-AHC over the bank.
pub fn pretrain_tahc(tahc: &mut Tahc, bank: &PretrainBank, cfg: &PretrainConfig) -> PretrainReport {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xA1);
    let mut opt = octs_tensor::Adam::new(cfg.lr, cfg.weight_decay);
    let use_task = tahc.cfg.task_aware;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut delta = 0usize;

    for _epoch in 0..cfg.epochs {
        // Gather this epoch's pairs across all tasks (curriculum C_t).
        let mut all: Vec<(usize, &ArchHyper, &ArchHyper, f32)> = Vec::new();
        for (ti, s) in bank.samples.iter().enumerate() {
            let mut pool: Vec<LabeledAh> = s.shared.clone();
            pool.extend(s.random.iter().take(delta).cloned());
            // Dynamic pairing needs owned shuffle; borrow via indices below.
            let mut idx: Vec<usize> = (0..pool.len()).collect();
            idx.shuffle(&mut rng);
            for pair in idx.chunks_exact(2) {
                let (a, b) = (&pool[pair[0]], &pool[pair[1]]);
                if (a.score - b.score).abs() < 1e-6 {
                    continue;
                }
                let y = if a.score < b.score { 1.0 } else { 0.0 };
                // resolve back to the bank's stable storage for lifetimes
                let find = |x: &LabeledAh| -> &ArchHyper {
                    s.shared
                        .iter()
                        .chain(s.random.iter())
                        .find(|l| l.ah == x.ah)
                        .map(|l| &l.ah)
                        .expect("sample came from the bank")
                };
                all.push((ti, find(a), find(b), y));
            }
        }
        all.shuffle(&mut rng);

        let mut loss_sum = 0.0f32;
        let mut batches = 0usize;
        for chunk in all.chunks(cfg.batch) {
            let batch: Vec<_> = chunk
                .iter()
                .map(|(ti, a, b, y)| {
                    let prelim = if use_task { Some(&bank.prelims[*ti]) } else { None };
                    (prelim, *a, *b, *y)
                })
                .collect();
            if batch.is_empty() {
                continue;
            }
            loss_sum += tahc.train_batch(&mut opt, &batch);
            batches += 1;
        }
        epoch_losses.push(if batches > 0 { loss_sum / batches as f32 } else { f32::NAN });
        delta = (delta + cfg.curriculum_step).min(cfg.l_random);
    }

    // Hold-out evaluation: fresh pairings over the full pools.
    let mut eval_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xE7A1);
    let mut eval: Vec<(Option<&Tensor>, &ArchHyper, &ArchHyper, f32)> = Vec::new();
    for (ti, s) in bank.samples.iter().enumerate() {
        let pool: Vec<&LabeledAh> = s.shared.iter().chain(s.random.iter()).collect();
        let mut idx: Vec<usize> = (0..pool.len()).collect();
        idx.shuffle(&mut eval_rng);
        for pair in idx.chunks_exact(2) {
            let (a, b) = (pool[pair[0]], pool[pair[1]]);
            if (a.score - b.score).abs() < 1e-6 {
                continue;
            }
            let y = if a.score < b.score { 1.0 } else { 0.0 };
            let prelim = if use_task { Some(&bank.prelims[ti]) } else { None };
            eval.push((prelim, &a.ah, &b.ah, y));
        }
    }
    let holdout_accuracy = tahc.accuracy(&eval);
    PretrainReport { epoch_losses, holdout_accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ahc::TahcConfig;
    use crate::task_embed::TaskEmbedConfig;
    use crate::ts2vec::Ts2VecConfig;
    use octs_data::{DatasetProfile, Domain, ForecastSetting};

    fn tiny_tasks(n: usize) -> Vec<ForecastTask> {
        (0..n)
            .map(|i| {
                let p = DatasetProfile::custom(
                    &format!("pt{i}"),
                    if i % 2 == 0 { Domain::Traffic } else { Domain::Energy },
                    3,
                    200,
                    24,
                    0.3,
                    0.1,
                    10.0,
                    40 + i as u64,
                );
                ForecastTask::new(p.generate(0), ForecastSetting::multi(4, 2), 0.6, 0.2, 2)
            })
            .collect()
    }

    fn tiny_embedder() -> TaskEmbedder {
        TaskEmbedder::new(TaskEmbedConfig::test(), Ts2VecConfig::test(), 1)
    }

    #[test]
    fn bank_collection_shapes() {
        let tasks = tiny_tasks(2);
        let mut emb = tiny_embedder();
        let cfg = PretrainConfig { l_shared: 3, l_random: 3, ..PretrainConfig::test() };
        let bank = collect_bank(tasks, &mut emb, &JointSpace::tiny(), &cfg);
        assert_eq!(bank.tasks.len(), 2);
        assert_eq!(bank.prelims.len(), 2);
        for s in &bank.samples {
            assert_eq!(s.shared.len(), 3);
            assert_eq!(s.random.len(), 3);
            assert!(s.shared.iter().all(|l| l.score.is_finite()));
        }
        // shared arch-hypers identical across tasks
        for i in 0..3 {
            assert_eq!(bank.samples[0].shared[i].ah, bank.samples[1].shared[i].ah);
        }
    }

    #[test]
    fn dynamic_pairs_label_by_score() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let space = JointSpace::tiny();
        let ahs = space.sample_distinct(4, &mut rng);
        let pool: Vec<LabeledAh> = ahs
            .iter()
            .enumerate()
            .map(|(i, ah)| LabeledAh { ah: ah.clone(), score: i as f32 })
            .collect();
        let pairs = dynamic_pairs(&pool, &mut rng);
        assert_eq!(pairs.len(), 2);
        for (a, b, y) in pairs {
            let sa = pool.iter().find(|l| &l.ah == a).unwrap().score;
            let sb = pool.iter().find(|l| &l.ah == b).unwrap().score;
            assert_eq!(y > 0.5, sa < sb);
        }
    }

    #[test]
    fn pretraining_improves_over_chance() {
        let tasks = tiny_tasks(2);
        let mut emb = tiny_embedder();
        let space = JointSpace::tiny();
        let cfg = PretrainConfig { epochs: 8, ..PretrainConfig::test() };
        let bank = collect_bank(tasks, &mut emb, &space, &cfg);
        let mut tahc = Tahc::new(TahcConfig::test(), space.hyper.clone(), 0);
        let report = pretrain_tahc(&mut tahc, &bank, &cfg);
        assert_eq!(report.epoch_losses.len(), 8);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        // losses should generally decline
        let first = report.epoch_losses.first().unwrap();
        let last = report.epoch_losses.last().unwrap();
        assert!(last <= first, "{first} -> {last}");
    }
}
