//! T-AHC pre-training (Section 3.2.4, Algorithm 1): label collection with the
//! early-validation proxy, shared + random samples, data-level curriculum and
//! dynamic pairing.

use crate::ahc::Tahc;
use crate::task_embed::TaskEmbedder;
use octs_data::ForecastTask;
use octs_model::{early_validation, TrainConfig};
use octs_space::{ArchHyper, JointSpace};
use octs_tensor::Tensor;
use octs_tensor::{Adam, ParamStore};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// An arch-hyper with its early-validation score `R'` (lower = better).
#[derive(Debug, Clone)]
pub struct LabeledAh {
    /// The candidate.
    pub ah: ArchHyper,
    /// Early-validation MAE (scaled units). `f32::INFINITY` for quarantined
    /// candidates (the worst-rank proxy label).
    pub score: f32,
    /// True when labelling this candidate diverged past the trainer's strike
    /// budget or panicked outright. Quarantined samples never enter
    /// comparator training pools.
    pub quarantined: bool,
}

/// Labelled samples for one pre-training task.
#[derive(Debug, Clone)]
pub struct TaskSamples {
    /// The `L` arch-hypers shared across *all* tasks (easy knowledge: lets
    /// T-AHC read task similarity off a common yardstick).
    pub shared: Vec<LabeledAh>,
    /// The `L` task-specific random arch-hypers (hard knowledge).
    pub random: Vec<LabeledAh>,
}

/// Everything the pre-training loop consumes.
pub struct PretrainBank {
    /// The pre-training tasks.
    pub tasks: Vec<ForecastTask>,
    /// Frozen preliminary embeddings, one `[W, S, F']` tensor per task.
    pub prelims: Vec<Tensor>,
    /// Labelled samples per task.
    pub samples: Vec<TaskSamples>,
}

/// The task-free residue of a [`PretrainBank`]: exactly what the training
/// loop reads. The datasets themselves are ~99% of a bank's bytes and the
/// trainer never touches them, so streaming pipelines label each task as it
/// flows past, keep its `(prelim, samples)` pair here, and drop the task —
/// peak memory stays O(prefetch window), not O(bank).
#[derive(Default)]
pub struct LabeledBank {
    /// Frozen preliminary embeddings, one `[W, S, F']` tensor per task.
    pub prelims: Vec<Tensor>,
    /// Labelled samples per task.
    pub samples: Vec<TaskSamples>,
}

impl LabeledBank {
    /// Number of tasks represented.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no task has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Pre-training knobs.
///
/// Serializable so crash-safe pipelines can fingerprint a run's
/// configuration and refuse to resume a journal written under different
/// knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Shared sample count `L` per task.
    pub l_shared: usize,
    /// Random sample count `L` per task.
    pub l_random: usize,
    /// Training epochs `k_t`.
    pub epochs: usize,
    /// Pairs per comparator batch.
    pub batch: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Adam weight decay (paper: 5e-4).
    pub weight_decay: f32,
    /// Curriculum increment: how many random samples join per epoch (Δ).
    pub curriculum_step: usize,
    /// Configuration of the early-validation labelling runs (k epochs).
    pub label_cfg: TrainConfig,
    /// RNG seed.
    pub seed: u64,
}

impl PretrainConfig {
    /// CPU-scaled defaults.
    pub fn scaled() -> Self {
        Self {
            l_shared: 8,
            l_random: 8,
            epochs: 12,
            batch: 16,
            lr: 1e-3,
            weight_decay: 5e-4,
            curriculum_step: 1,
            label_cfg: TrainConfig::early_validation(),
            seed: 0,
        }
    }

    /// Tiny defaults for tests.
    pub fn test() -> Self {
        Self {
            l_shared: 4,
            l_random: 4,
            epochs: 3,
            batch: 8,
            lr: 2e-3,
            weight_decay: 0.0,
            curriculum_step: 2,
            label_cfg: TrainConfig::test(),
            seed: 0,
        }
    }
}

/// One unit of labelling work: a single candidate on a single task. The
/// `unit` id is a stable flat index (`task_idx * (L_shared + L_random) +
/// slot`), which keys progress journals and fault-injection plans.
#[derive(Debug, Clone)]
pub struct LabelUnit {
    /// Stable flat index of this unit across the whole labelling phase.
    pub unit: u64,
    /// Index into the task list.
    pub task_idx: usize,
    /// True for a shared-pool sample, false for a task-specific random one.
    pub shared: bool,
    /// Position within the task's shared (or random) sample list.
    pub slot: usize,
    /// The candidate to label.
    pub ah: ArchHyper,
}

/// Deterministically enumerates every labelling unit for `tasks`: the shared
/// pool (sampled from the master seed) replicated per task, plus each task's
/// own random samples. The enumeration — including every sampled
/// [`ArchHyper`] — depends only on `(space, cfg)`, so a resumed run
/// reconstructs the identical work list.
pub fn label_units(
    tasks: &[ForecastTask],
    space: &JointSpace,
    cfg: &PretrainConfig,
) -> Vec<LabelUnit> {
    let pool = shared_pool(space, cfg);
    let stride = cfg.l_shared + cfg.l_random;
    let mut units = Vec::with_capacity(tasks.len() * stride);
    for ti in 0..tasks.len() {
        units.extend(task_label_units(ti, &pool, space, cfg));
    }
    units
}

/// Samples the `L` arch-hypers shared across every pre-training task, from
/// the master seed alone. Workers on disjoint shard subsets call this
/// independently and land on the same pool.
pub fn shared_pool(space: &JointSpace, cfg: &PretrainConfig) -> Vec<ArchHyper> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut pool = space.sample_distinct(cfg.l_shared.max(1), &mut rng);
    pool.truncate(cfg.l_shared);
    pool
}

/// Enumerates the labelling units of a single task: the shared pool in its
/// per-task replica slots, plus the task's own random samples drawn from an
/// independent per-task RNG substream. Depends only on `(ti, space, cfg)` —
/// *not* on which worker runs it or which tasks surround it — so any
/// shard→worker assignment reproduces the exact unit list of the in-memory
/// [`label_units`] enumeration.
pub fn task_label_units(
    ti: usize,
    shared: &[ArchHyper],
    space: &JointSpace,
    cfg: &PretrainConfig,
) -> Vec<LabelUnit> {
    let stride = (cfg.l_shared + cfg.l_random) as u64;
    let mut trng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (ti as u64 + 1) << 8);
    let randoms = space.sample_distinct(cfg.l_random, &mut trng);
    let base = ti as u64 * stride;
    let mut units = Vec::with_capacity(stride as usize);
    for (i, ah) in shared.iter().enumerate() {
        units.push(LabelUnit {
            unit: base + i as u64,
            task_idx: ti,
            shared: true,
            slot: i,
            ah: ah.clone(),
        });
    }
    for (i, ah) in randoms.into_iter().enumerate() {
        units.push(LabelUnit {
            unit: base + (cfg.l_shared + i) as u64,
            task_idx: ti,
            shared: false,
            slot: i,
            ah,
        });
    }
    units
}

/// Labels one candidate with the early-validation proxy under full fault
/// isolation: the work runs with the unit's fault id set (so injected NaNs
/// and panics target it precisely) and inside `catch_unwind`, so a panicking
/// candidate — injected or genuine — quarantines *itself* instead of killing
/// the whole labelling fan-out. Divergent (poisoned) trainings come back as
/// `f32::INFINITY` from [`early_validation`] and are quarantined too.
pub fn label_one(ah: &ArchHyper, task: &ForecastTask, unit: u64, cfg: &TrainConfig) -> LabeledAh {
    let _obs = octs_obs::span_detail("label.unit", unit.to_string());
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        octs_fault::with_unit(unit, || {
            octs_fault::maybe_panic_unit();
            early_validation(ah, task, cfg)
        })
    }));
    match outcome {
        Ok(score) if score.is_finite() => LabeledAh { ah: ah.clone(), score, quarantined: false },
        Ok(_) | Err(_) => {
            octs_obs::event("label.quarantine", unit as f64, &format!("unit {unit}"));
            LabeledAh { ah: ah.clone(), score: f32::INFINITY, quarantined: true }
        }
    }
}

/// Reassembles per-task sample lists from labelled units. `scores` maps each
/// unit id to its `(score, quarantined)` outcome — from a live labelling run
/// or replayed out of a progress journal; the assembly is order-independent,
/// so a resumed run and an uninterrupted one produce identical banks.
pub fn assemble_samples(
    units: &[LabelUnit],
    scores: &BTreeMap<u64, (f32, bool)>,
    n_tasks: usize,
    cfg: &PretrainConfig,
) -> Vec<TaskSamples> {
    let mut shared: Vec<Vec<Option<LabeledAh>>> = vec![vec![None; cfg.l_shared]; n_tasks];
    let mut random: Vec<Vec<Option<LabeledAh>>> = vec![vec![None; cfg.l_random]; n_tasks];
    for u in units {
        let (score, quarantined) =
            *scores.get(&u.unit).unwrap_or_else(|| panic!("unit {} has no label", u.unit));
        let labeled = LabeledAh { ah: u.ah.clone(), score, quarantined };
        let dst = if u.shared { &mut shared[u.task_idx] } else { &mut random[u.task_idx] };
        dst[u.slot] = Some(labeled);
    }
    shared
        .into_iter()
        .zip(random)
        .map(|(s, r)| TaskSamples {
            shared: s.into_iter().map(|l| l.expect("shared slot labelled")).collect(),
            random: r.into_iter().map(|l| l.expect("random slot labelled")).collect(),
        })
        .collect()
}

/// Labels shared + per-task random arch-hypers with the early-validation
/// proxy (parallel over all units). This is the expensive phase of bank
/// collection and is *embedder-independent*, so ablation studies run it once
/// and share the result across comparator variants. Candidates that diverge
/// or panic are quarantined, not fatal.
pub fn collect_labels(
    tasks: &[ForecastTask],
    space: &JointSpace,
    cfg: &PretrainConfig,
) -> Vec<TaskSamples> {
    let _obs = octs_obs::span("phase.label");
    let units = label_units(tasks, space, cfg);
    octs_obs::counter("label.units", units.len() as u64);
    let labeled: Vec<(u64, (f32, bool))> = units
        .par_iter()
        .map(|u| {
            let l = label_one(&u.ah, &tasks[u.task_idx], u.unit, &cfg.label_cfg);
            (u.unit, (l.score, l.quarantined))
        })
        .collect();
    let scores: BTreeMap<u64, (f32, bool)> = labeled.into_iter().collect();
    assemble_samples(&units, &scores, tasks.len(), cfg)
}

/// Precomputes the frozen preliminary embedding of every task.
pub fn embed_tasks(tasks: &[ForecastTask], embedder: &mut TaskEmbedder) -> Vec<Tensor> {
    let _obs = octs_obs::span("phase.embed");
    tasks.iter().map(|t| embedder.preliminary(t)).collect()
}

/// Collects the pre-training bank: samples shared and per-task random
/// arch-hypers, labels each with the early-validation proxy (parallel over
/// candidates), and precomputes preliminary task embeddings.
pub fn collect_bank(
    tasks: Vec<ForecastTask>,
    embedder: &mut TaskEmbedder,
    space: &JointSpace,
    cfg: &PretrainConfig,
) -> PretrainBank {
    let prelims = embed_tasks(&tasks, embedder);
    let samples = collect_labels(&tasks, space, cfg);
    PretrainBank { tasks, prelims, samples }
}

/// Outcome of pre-training.
#[derive(Debug, Clone)]
pub struct PretrainReport {
    /// Mean BCE loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Pairwise classification accuracy on freshly-paired held-out
    /// comparisons after training.
    pub holdout_accuracy: f32,
    /// Epoch-level divergence rollbacks absorbed during training (0 on a
    /// clean run).
    pub divergence_rollbacks: usize,
}

/// Builds dynamically-paired comparisons from a pool of labelled samples:
/// shuffles, pairs consecutive entries, labels by score order, and drops
/// near-ties that carry no ranking signal. Quarantined samples are excluded
/// before pairing.
pub fn dynamic_pairs<'a>(
    pool: &'a [LabeledAh],
    rng: &mut ChaCha8Rng,
) -> Vec<(&'a ArchHyper, &'a ArchHyper, f32)> {
    let mut idx: Vec<usize> = (0..pool.len()).filter(|&i| !pool[i].quarantined).collect();
    idx.shuffle(rng);
    let mut out = Vec::new();
    for pair in idx.chunks_exact(2) {
        let (a, b) = (&pool[pair[0]], &pool[pair[1]]);
        if (a.score - b.score).abs() < 1e-6 {
            continue;
        }
        let y = if a.score < b.score { 1.0 } else { 0.0 };
        out.push((&a.ah, &b.ah, y));
    }
    out
}

/// Everything that determines the remainder of a pre-training run: restoring
/// this state into a fresh [`Tahc`]/[`TahcTrainer`] pair continues bit-for-
/// bit where the serialized run stopped. Written at epoch boundaries by the
/// crash-safe pipeline.
#[derive(Serialize, Deserialize)]
pub struct TahcTrainerState {
    /// Comparator parameters (with their init RNG).
    pub params: ParamStore,
    /// Optimizer moments and step count.
    pub opt: Adam,
    /// The curriculum/shuffling RNG, mid-stream.
    pub rng: ChaCha8Rng,
    /// Epochs completed so far.
    pub epoch: usize,
    /// Current curriculum size (how many random samples participate).
    pub delta: usize,
    /// Mean BCE loss of each completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Divergence rollbacks absorbed so far.
    pub rollbacks: usize,
}

/// Step-wise driver for Algorithm 1: owns the optimizer, curriculum counter
/// and RNG so that pre-training can advance one epoch at a time, export its
/// full state at any epoch boundary ([`TahcTrainer::export_state`]) and be
/// reconstructed from it ([`TahcTrainer::from_state`]) — the building block
/// of crash-safe, resumable pre-training. [`pretrain_tahc`] is the
/// uninterrupted convenience loop over it.
pub struct TahcTrainer {
    opt: Adam,
    rng: ChaCha8Rng,
    epoch: usize,
    delta: usize,
    epoch_losses: Vec<f32>,
    rollbacks: usize,
}

/// Epoch-level retry budget for transient comparator-training divergence.
const PRETRAIN_MAX_RETRIES: usize = 3;

impl TahcTrainer {
    /// A fresh trainer at epoch 0.
    pub fn new(cfg: &PretrainConfig) -> Self {
        Self {
            opt: Adam::new(cfg.lr, cfg.weight_decay),
            rng: ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xA1),
            epoch: 0,
            delta: 0,
            epoch_losses: Vec::new(),
            rollbacks: 0,
        }
    }

    /// Epochs completed so far.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// True once every configured epoch has run.
    pub fn is_done(&self, cfg: &PretrainConfig) -> bool {
        self.epoch >= cfg.epochs
    }

    /// Mean BCE losses of the completed epochs.
    pub fn epoch_losses(&self) -> &[f32] {
        &self.epoch_losses
    }

    /// Serializes the full training state, pairing the trainer's own fields
    /// with a snapshot of the comparator's parameters.
    pub fn export_state(&self, tahc: &Tahc) -> TahcTrainerState {
        TahcTrainerState {
            params: tahc.ps.snapshot(),
            opt: self.opt.clone(),
            rng: self.rng.clone(),
            epoch: self.epoch,
            delta: self.delta,
            epoch_losses: self.epoch_losses.clone(),
            rollbacks: self.rollbacks,
        }
    }

    /// Rebuilds a trainer mid-run, installing the serialized parameters into
    /// `tahc` (and dropping its stale embedding caches).
    pub fn from_state(state: TahcTrainerState, tahc: &mut Tahc) -> Self {
        tahc.ps = state.params;
        tahc.invalidate_caches();
        Self {
            opt: state.opt,
            rng: state.rng,
            epoch: state.epoch,
            delta: state.delta,
            epoch_losses: state.epoch_losses,
            rollbacks: state.rollbacks,
        }
    }

    /// Runs one curriculum epoch, returning its mean BCE loss.
    ///
    /// A non-finite epoch loss (genuine divergence or an injected
    /// [`octs_fault::pretrain_nan`]) rolls the comparator, optimizer and RNG
    /// back to the epoch start, halves the learning rate and retries — the
    /// restored RNG replays the identical pairing. After
    /// [`PRETRAIN_MAX_RETRIES`] failed attempts the loss is recorded as-is
    /// and training moves on (downstream holdout accuracy exposes the wreck).
    pub fn run_epoch(&mut self, tahc: &mut Tahc, bank: &PretrainBank, cfg: &PretrainConfig) -> f32 {
        self.run_epoch_on(tahc, &bank.prelims, &bank.samples, cfg)
    }

    /// [`TahcTrainer::run_epoch`] over the task-free residue of a bank — the
    /// entry point for streamed pre-training, where no [`PretrainBank`] (with
    /// its resident datasets) ever exists. Byte-identical to `run_epoch` on
    /// the equivalent in-memory bank.
    pub fn run_epoch_on(
        &mut self,
        tahc: &mut Tahc,
        prelims: &[Tensor],
        samples: &[TaskSamples],
        cfg: &PretrainConfig,
    ) -> f32 {
        let _obs = octs_obs::span_detail("pretrain.epoch", self.epoch.to_string());
        let mut attempts = 0usize;
        loop {
            let snap_params = tahc.ps.snapshot();
            let snap_opt = self.opt.clone();
            let snap_rng = self.rng.clone();
            let inject = octs_fault::armed() && octs_fault::pretrain_nan(self.epoch);
            let (mut loss, batches) = self.epoch_pass(tahc, prelims, samples, cfg);
            if inject {
                loss = f32::NAN;
            }
            // Pair-free epochs legitimately report NaN; only a diverged pass
            // over real batches triggers the rollback.
            let diverged = batches > 0 && !loss.is_finite();
            if !diverged || attempts >= PRETRAIN_MAX_RETRIES {
                self.epoch_losses.push(loss);
                self.epoch += 1;
                self.delta = (self.delta + cfg.curriculum_step).min(cfg.l_random);
                return loss;
            }
            tahc.ps = snap_params;
            tahc.invalidate_caches();
            self.opt = snap_opt;
            self.rng = snap_rng;
            self.opt.lr *= 0.5;
            self.rollbacks += 1;
            octs_obs::event(
                "pretrain.divergence_rollback",
                self.rollbacks as f64,
                &format!("epoch {}", self.epoch),
            );
            attempts += 1;
        }
    }

    /// One pass over the epoch's curriculum pairs; returns `(mean loss,
    /// batch count)`.
    fn epoch_pass(
        &mut self,
        tahc: &mut Tahc,
        prelims: &[Tensor],
        samples: &[TaskSamples],
        cfg: &PretrainConfig,
    ) -> (f32, usize) {
        let use_task = tahc.cfg.task_aware;
        // Gather this epoch's pairs across all tasks (curriculum C_t).
        let mut all: Vec<(usize, &ArchHyper, &ArchHyper, f32)> = Vec::new();
        for (ti, s) in samples.iter().enumerate() {
            let mut pool: Vec<LabeledAh> =
                s.shared.iter().filter(|l| !l.quarantined).cloned().collect();
            pool.extend(s.random.iter().take(self.delta).filter(|l| !l.quarantined).cloned());
            // Dynamic pairing needs owned shuffle; borrow via indices below.
            let mut idx: Vec<usize> = (0..pool.len()).collect();
            idx.shuffle(&mut self.rng);
            for pair in idx.chunks_exact(2) {
                let (a, b) = (&pool[pair[0]], &pool[pair[1]]);
                if (a.score - b.score).abs() < 1e-6 {
                    continue;
                }
                let y = if a.score < b.score { 1.0 } else { 0.0 };
                // resolve back to the bank's stable storage for lifetimes
                let find = |x: &LabeledAh| -> &ArchHyper {
                    s.shared
                        .iter()
                        .chain(s.random.iter())
                        .find(|l| l.ah == x.ah)
                        .map(|l| &l.ah)
                        .expect("sample came from the bank")
                };
                all.push((ti, find(a), find(b), y));
            }
        }
        all.shuffle(&mut self.rng);

        let mut loss_sum = 0.0f32;
        let mut batches = 0usize;
        for chunk in all.chunks(cfg.batch) {
            let batch: Vec<_> = chunk
                .iter()
                .map(|(ti, a, b, y)| {
                    let prelim = if use_task { Some(&prelims[*ti]) } else { None };
                    (prelim, *a, *b, *y)
                })
                .collect();
            if batch.is_empty() {
                continue;
            }
            loss_sum += tahc.train_batch(&mut self.opt, &batch);
            batches += 1;
        }
        let mean = if batches > 0 { loss_sum / batches as f32 } else { f32::NAN };
        (mean, batches)
    }

    /// Hold-out evaluation over fresh pairings of the full (non-quarantined)
    /// pools, closing out the run as a [`PretrainReport`].
    pub fn finish(&self, tahc: &Tahc, bank: &PretrainBank, cfg: &PretrainConfig) -> PretrainReport {
        self.finish_on(tahc, &bank.prelims, &bank.samples, cfg)
    }

    /// [`TahcTrainer::finish`] over the task-free residue of a bank; the
    /// streamed counterpart, byte-identical to `finish`.
    pub fn finish_on(
        &self,
        tahc: &Tahc,
        prelims: &[Tensor],
        samples: &[TaskSamples],
        cfg: &PretrainConfig,
    ) -> PretrainReport {
        let use_task = tahc.cfg.task_aware;
        let mut eval_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xE7A1);
        let mut eval: Vec<(Option<&Tensor>, &ArchHyper, &ArchHyper, f32)> = Vec::new();
        for (ti, s) in samples.iter().enumerate() {
            let pool: Vec<&LabeledAh> =
                s.shared.iter().chain(s.random.iter()).filter(|l| !l.quarantined).collect();
            let mut idx: Vec<usize> = (0..pool.len()).collect();
            idx.shuffle(&mut eval_rng);
            for pair in idx.chunks_exact(2) {
                let (a, b) = (pool[pair[0]], pool[pair[1]]);
                if (a.score - b.score).abs() < 1e-6 {
                    continue;
                }
                let y = if a.score < b.score { 1.0 } else { 0.0 };
                let prelim = if use_task { Some(&prelims[ti]) } else { None };
                eval.push((prelim, &a.ah, &b.ah, y));
            }
        }
        let holdout_accuracy = tahc.accuracy(&eval);
        PretrainReport {
            epoch_losses: self.epoch_losses.clone(),
            holdout_accuracy,
            divergence_rollbacks: self.rollbacks,
        }
    }
}

/// Algorithm 1: curriculum pre-training of T-AHC over the bank — the
/// uninterrupted loop over [`TahcTrainer`].
pub fn pretrain_tahc(tahc: &mut Tahc, bank: &PretrainBank, cfg: &PretrainConfig) -> PretrainReport {
    let _obs = octs_obs::span("phase.pretrain");
    let mut trainer = TahcTrainer::new(cfg);
    while !trainer.is_done(cfg) {
        trainer.run_epoch(tahc, bank, cfg);
    }
    trainer.finish(tahc, bank, cfg)
}

/// [`pretrain_tahc`] over a [`LabeledBank`] — the streamed pipeline's loop,
/// byte-identical to the in-memory one on an equivalent bank.
pub fn pretrain_tahc_labeled(
    tahc: &mut Tahc,
    bank: &LabeledBank,
    cfg: &PretrainConfig,
) -> PretrainReport {
    let _obs = octs_obs::span("phase.pretrain");
    let mut trainer = TahcTrainer::new(cfg);
    while !trainer.is_done(cfg) {
        trainer.run_epoch_on(tahc, &bank.prelims, &bank.samples, cfg);
    }
    trainer.finish_on(tahc, &bank.prelims, &bank.samples, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ahc::TahcConfig;
    use crate::task_embed::TaskEmbedConfig;
    use crate::ts2vec::Ts2VecConfig;
    use octs_data::{DatasetProfile, Domain, ForecastSetting};

    fn tiny_tasks(n: usize) -> Vec<ForecastTask> {
        (0..n)
            .map(|i| {
                let p = DatasetProfile::custom(
                    &format!("pt{i}"),
                    if i % 2 == 0 { Domain::Traffic } else { Domain::Energy },
                    3,
                    200,
                    24,
                    0.3,
                    0.1,
                    10.0,
                    40 + i as u64,
                );
                ForecastTask::new(p.generate(0), ForecastSetting::multi(4, 2), 0.6, 0.2, 2)
            })
            .collect()
    }

    fn tiny_embedder() -> TaskEmbedder {
        TaskEmbedder::new(TaskEmbedConfig::test(), Ts2VecConfig::test(), 1)
    }

    #[test]
    fn bank_collection_shapes() {
        let tasks = tiny_tasks(2);
        let mut emb = tiny_embedder();
        let cfg = PretrainConfig { l_shared: 3, l_random: 3, ..PretrainConfig::test() };
        let bank = collect_bank(tasks, &mut emb, &JointSpace::tiny(), &cfg);
        assert_eq!(bank.tasks.len(), 2);
        assert_eq!(bank.prelims.len(), 2);
        for s in &bank.samples {
            assert_eq!(s.shared.len(), 3);
            assert_eq!(s.random.len(), 3);
            assert!(s.shared.iter().all(|l| l.score.is_finite()));
        }
        // shared arch-hypers identical across tasks
        for i in 0..3 {
            assert_eq!(bank.samples[0].shared[i].ah, bank.samples[1].shared[i].ah);
        }
    }

    #[test]
    fn dynamic_pairs_label_by_score() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let space = JointSpace::tiny();
        let ahs = space.sample_distinct(4, &mut rng);
        let pool: Vec<LabeledAh> = ahs
            .iter()
            .enumerate()
            .map(|(i, ah)| LabeledAh { ah: ah.clone(), score: i as f32, quarantined: false })
            .collect();
        let pairs = dynamic_pairs(&pool, &mut rng);
        assert_eq!(pairs.len(), 2);
        for (a, b, y) in pairs {
            let sa = pool.iter().find(|l| &l.ah == a).unwrap().score;
            let sb = pool.iter().find(|l| &l.ah == b).unwrap().score;
            assert_eq!(y > 0.5, sa < sb);
        }
    }

    #[test]
    fn faulted_units_are_quarantined_with_worst_rank_label() {
        // Unit layout: stride = l_shared + l_random = 6; task 0 owns units
        // 0..6, task 1 owns 6..12. Panic unit 1 (task 0, shared slot 1) and
        // persistently NaN unit 9 (task 1, random slot 0): both must come
        // back quarantined with the INFINITY proxy label, everything else
        // untouched, and the fan-out must survive the panic.
        let tasks = tiny_tasks(2);
        let cfg = PretrainConfig { l_shared: 3, l_random: 3, ..PretrainConfig::test() };
        let _scope = octs_fault::FaultScope::activate(
            octs_fault::FaultPlan::new().panic_unit(1).nan_loss(9, 0),
        );
        let samples = collect_labels(&tasks, &JointSpace::tiny(), &cfg);
        assert!(samples[0].shared[1].quarantined);
        assert!(samples[0].shared[1].score.is_infinite());
        assert!(samples[1].random[0].quarantined);
        assert!(samples[1].random[0].score.is_infinite());
        let healthy = samples
            .iter()
            .flat_map(|s| s.shared.iter().chain(s.random.iter()))
            .filter(|l| !l.quarantined)
            .count();
        assert_eq!(healthy, 10);
        assert!(samples
            .iter()
            .flat_map(|s| s.shared.iter().chain(s.random.iter()))
            .filter(|l| !l.quarantined)
            .all(|l| l.score.is_finite()));
    }

    #[test]
    fn quarantined_samples_never_enter_pairs() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let space = JointSpace::tiny();
        let ahs = space.sample_distinct(6, &mut rng);
        let pool: Vec<LabeledAh> = ahs
            .iter()
            .enumerate()
            .map(|(i, ah)| LabeledAh {
                ah: ah.clone(),
                score: if i < 2 { f32::INFINITY } else { i as f32 },
                quarantined: i < 2,
            })
            .collect();
        for _ in 0..10 {
            for (a, b, _) in dynamic_pairs(&pool, &mut rng) {
                assert!(pool.iter().find(|l| &l.ah == a).unwrap().score.is_finite());
                assert!(pool.iter().find(|l| &l.ah == b).unwrap().score.is_finite());
            }
        }
    }

    #[test]
    fn trainer_state_roundtrip_resumes_bitwise() {
        // Epochs 0..2 + serialize + restore + epochs 2..4 must equal an
        // uninterrupted 4-epoch run: same losses, same parameters, bit for
        // bit. This is the property the crash-safe pipeline builds on.
        let tasks = tiny_tasks(2);
        let mut emb = tiny_embedder();
        let space = JointSpace::tiny();
        let cfg = PretrainConfig { epochs: 4, ..PretrainConfig::test() };
        let bank = collect_bank(tasks, &mut emb, &space, &cfg);

        let mut tahc_a = Tahc::new(TahcConfig::test(), space.hyper.clone(), 0);
        let report_a = pretrain_tahc(&mut tahc_a, &bank, &cfg);

        let mut tahc_b = Tahc::new(TahcConfig::test(), space.hyper.clone(), 0);
        let mut trainer = TahcTrainer::new(&cfg);
        trainer.run_epoch(&mut tahc_b, &bank, &cfg);
        trainer.run_epoch(&mut tahc_b, &bank, &cfg);
        let json = serde_json::to_string(&trainer.export_state(&tahc_b)).unwrap();
        drop(trainer);
        drop(tahc_b);

        let state: TahcTrainerState = serde_json::from_str(&json).unwrap();
        let mut tahc_c = Tahc::new(TahcConfig::test(), space.hyper.clone(), 99);
        let mut resumed = TahcTrainer::from_state(state, &mut tahc_c);
        assert_eq!(resumed.epoch(), 2);
        while !resumed.is_done(&cfg) {
            resumed.run_epoch(&mut tahc_c, &bank, &cfg);
        }
        let report_c = resumed.finish(&tahc_c, &bank, &cfg);

        assert_eq!(report_a.epoch_losses, report_c.epoch_losses);
        assert_eq!(report_a.holdout_accuracy, report_c.holdout_accuracy);
        let ser = |t: &Tahc| serde_json::to_string(&t.ps.snapshot()).unwrap();
        assert_eq!(ser(&tahc_a), ser(&tahc_c), "resumed params must match bitwise");
    }

    #[test]
    fn transient_pretrain_nan_rolls_back_and_recovers() {
        let tasks = tiny_tasks(2);
        let mut emb = tiny_embedder();
        let space = JointSpace::tiny();
        let cfg = PretrainConfig { epochs: 4, ..PretrainConfig::test() };
        let bank = collect_bank(tasks, &mut emb, &space, &cfg);
        let _scope = octs_fault::FaultScope::activate(octs_fault::FaultPlan::new().pretrain_nan(1));
        let mut tahc = Tahc::new(TahcConfig::test(), space.hyper.clone(), 0);
        let report = pretrain_tahc(&mut tahc, &bank, &cfg);
        assert_eq!(report.divergence_rollbacks, 1);
        assert_eq!(report.epoch_losses.len(), 4);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(tahc.ps.all_finite());
    }

    #[test]
    fn repeated_task_pretrain_reports_nonzero_task_cache_hits() {
        // The full AutoCTS+ per-task search runs the comparator task-unaware
        // (prelim = None), so its task-cache counters are legitimately zero.
        // A task-aware run over repeated tasks is the regime the cache
        // exists for: the hold-out evaluation consults the pathway once per
        // comparison with only one distinct prelim per task, so after
        // pretraining the stats must show real hits, not a dead cache.
        let tasks = tiny_tasks(2);
        let mut emb = tiny_embedder();
        let space = JointSpace::tiny();
        let cfg = PretrainConfig::test();
        let bank = collect_bank(tasks, &mut emb, &space, &cfg);
        let mut tahc = Tahc::new(TahcConfig::test(), space.hyper.clone(), 3);
        assert!(tahc.cfg.task_aware, "fixture must exercise the task pathway");
        let report = pretrain_tahc(&mut tahc, &bank, &cfg);
        assert!(report.holdout_accuracy.is_finite());
        let stats = tahc.task_cache_stats();
        assert!(
            stats.hits > 0,
            "repeated-task evaluation must hit the task-pathway cache: {stats:?}"
        );
        assert!(
            stats.misses <= bank.tasks.len(),
            "one distinct prelim per task allows at most one miss each: {stats:?}"
        );
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn pretraining_improves_over_chance() {
        let tasks = tiny_tasks(2);
        let mut emb = tiny_embedder();
        let space = JointSpace::tiny();
        let cfg = PretrainConfig { epochs: 8, ..PretrainConfig::test() };
        let bank = collect_bank(tasks, &mut emb, &space, &cfg);
        let mut tahc = Tahc::new(TahcConfig::test(), space.hyper.clone(), 0);
        let report = pretrain_tahc(&mut tahc, &bank, &cfg);
        assert_eq!(report.epoch_losses.len(), 8);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        // losses should generally decline
        let first = report.epoch_losses.first().unwrap();
        let last = report.epoch_losses.last().unwrap();
        assert!(last <= first, "{first} -> {last}");
    }
}
