//! Offline stand-in for `criterion`: same macro/builder surface
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_with_input`, `BenchmarkId`), simple wall-clock measurement.
//!
//! Supports criterion's `--test` CLI flag (run every benchmark body exactly
//! once and report `ok` — the CI smoke mode) and substring filters. In
//! measurement mode each benchmark is timed over `sample_size` samples after
//! an adaptive calibration pass, reporting mean ns/iter to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Top-level harness state: CLI mode plus default settings.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Self { test_mode, filter, sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the default number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.matches(id) {
            let mut b =
                Bencher { test_mode: self.test_mode, sample_size: self.sample_size, report: None };
            f(&mut b);
            b.print(id);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: None }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A group of benchmarks sharing a name prefix and optional settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the measured sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs a benchmark identified by `id`, passing `input` to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        if self.parent.matches(&full) {
            let mut b = Bencher {
                test_mode: self.parent.test_mode,
                sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
                report: None,
            };
            f(&mut b, input);
            b.print(&full);
        }
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.parent.matches(&full) {
            let mut b = Bencher {
                test_mode: self.parent.test_mode,
                sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
                report: None,
            };
            f(&mut b);
            b.print(&full);
        }
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id that is just the parameter's `Display` form.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        Self(p.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<P: Display>(name: &str, p: P) -> Self {
        Self(format!("{name}/{p}"))
    }
}

/// Passed to benchmark closures; `iter` does the measuring.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    report: Option<f64>,
}

impl Bencher {
    /// Measures `routine`. In `--test` mode runs it exactly once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.report = None;
            return;
        }
        // Calibrate: grow the per-sample iteration count until one sample
        // takes long enough to time reliably.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };
        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total += start.elapsed();
            total_iters += iters;
            if total > Duration::from_secs(5) {
                break;
            }
        }
        let measured =
            if total_iters > 0 { total.as_secs_f64() / total_iters as f64 } else { per_iter };
        self.report = Some(measured * 1e9);
    }

    fn print(&self, id: &str) {
        match self.report {
            Some(ns) => println!("{id:<50} time: {ns:>14.1} ns/iter"),
            None => println!("{id:<50} ok (test mode)"),
        }
    }
}

/// Declares a group of benchmark functions, in either criterion form:
/// positional (`criterion_group!(benches, a, b)`) or struct
/// (`criterion_group! { name = benches; config = ...; targets = a, b }`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |bench, &x| {
            bench.iter(|| x + 1);
        });
        group.finish();
        c.bench_function("plain", |bench| bench.iter(|| 2 + 2));
    }

    #[test]
    fn harness_runs_in_test_mode() {
        let mut c = Criterion { test_mode: true, filter: None, sample_size: 10 };
        run_one(&mut c);
    }

    #[test]
    fn harness_measures_in_bench_mode() {
        let mut c = Criterion { test_mode: false, filter: None, sample_size: 2 };
        c.bench_function("tiny", |bench| bench.iter(|| black_box(1u64).wrapping_mul(3)));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { test_mode: false, filter: Some("nomatch".into()), sample_size: 2 };
        // Would take far too long at sample_size 2 if actually run.
        c.bench_function("expensive", |bench| {
            bench.iter(|| std::thread::sleep(std::time::Duration::from_secs(60)))
        });
    }

    criterion_group!(positional, run_one);
    criterion_group! {
        name = structured;
        config = Criterion { test_mode: true, filter: None, sample_size: 5 };
        targets = run_one
    }

    #[test]
    fn group_macros_compile_and_run() {
        // `positional` uses Criterion::default(), which reads test-runner CLI
        // args; those include the test filter, so it may filter everything
        // out — which is fine, it must simply not panic.
        positional();
        structured();
    }
}
