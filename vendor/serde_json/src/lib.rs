//! Offline stand-in for `serde_json`: the `to_string` / `from_str` entry
//! points over the vendored `serde` traits.

pub use serde::{Error, Value};

/// Serializes `value` to a JSON string. Infallible for the vendored
/// implementation, but keeps serde_json's `Result` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.json_write(&mut out);
    Ok(out)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let v = serde::parse_value(text)?;
    T::from_value(&v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip_via_entry_points() {
        let v = vec![(1u32, "a".to_string()), (2, "b \"quoted\"".to_string())];
        let json = super::to_string(&v).unwrap();
        let back: Vec<(u32, String)> = super::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn bad_json_errors() {
        let r: Result<u32, _> = super::from_str("{ not json");
        assert!(r.is_err());
    }
}
