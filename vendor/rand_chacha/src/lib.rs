//! Offline stand-in for `rand_chacha`: a genuine ChaCha stream cipher core
//! (8 rounds) exposed as [`ChaCha8Rng`].
//!
//! Implements the workspace's contract — deterministic seeded streams,
//! independent sub-streams via [`ChaCha8Rng::set_stream`], and serde state
//! snapshots — without attempting bit-compatibility with the upstream crate
//! (nothing in this repository compares against upstream output).

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const CHACHA_ROUNDS: usize = 8;

/// A deterministic, seedable ChaCha8 random number generator with 2⁶⁴
/// independent streams per seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    seed: [u8; 32],
    stream: u64,
    /// Index of the next block to generate.
    counter: u64,
    /// Current output block.
    block: [u32; BLOCK_WORDS],
    /// Next unread word in `block`; `BLOCK_WORDS` means "refill needed".
    word_idx: usize,
}

impl ChaCha8Rng {
    /// Selects an independent output stream, restarting it from its origin.
    /// Streams with different ids never overlap.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.word_idx = BLOCK_WORDS;
    }

    /// The currently selected stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut key = [0u32; 8];
        for (i, chunk) in self.seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // column round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, inp) in state.iter_mut().zip(input.iter()) {
            *s = s.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.word_idx = 0;
    }
}

#[inline]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_idx >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.block[self.word_idx];
        self.word_idx += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self { seed, stream: 0, counter: 0, block: [0; BLOCK_WORDS], word_idx: BLOCK_WORDS }
    }
}

impl serde::Serialize for ChaCha8Rng {
    fn json_write(&self, out: &mut String) {
        // Snapshot (seed, stream, position); the block cache is recomputed.
        let consumed_words =
            self.counter.wrapping_sub(1).wrapping_mul(BLOCK_WORDS as u64) + self.word_idx as u64;
        let pos =
            if self.word_idx == BLOCK_WORDS && self.counter == 0 { 0 } else { consumed_words };
        out.push('{');
        serde::write_escaped_str(out, "seed");
        out.push(':');
        self.seed.json_write(out);
        out.push(',');
        serde::write_escaped_str(out, "stream");
        out.push(':');
        self.stream.json_write(out);
        out.push(',');
        serde::write_escaped_str(out, "pos");
        out.push(':');
        pos.json_write(out);
        out.push('}');
    }
}

impl serde::Deserialize for ChaCha8Rng {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let seed: [u8; 32] = serde::get_field(v, "seed")?;
        let stream: u64 = serde::get_field(v, "stream")?;
        let pos: u64 = serde::get_field(v, "pos")?;
        let mut rng = Self::from_seed(seed);
        rng.set_stream(stream);
        for _ in 0..pos {
            rng.next_u32();
        }
        Ok(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.set_stream(1);
        let xs: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(xs, ys);
        // Re-selecting a stream restarts it.
        let mut c = ChaCha8Rng::seed_from_u64(5);
        c.set_stream(1);
        let zs: Vec<u32> = (0..8).map(|_| c.next_u32()).collect();
        assert_eq!(ys, zs);
    }

    #[test]
    fn serde_snapshot_resumes_mid_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..37 {
            rng.next_u32();
        }
        let mut json = String::new();
        serde::Serialize::json_write(&rng, &mut json);
        let mut restored: ChaCha8Rng =
            serde::Deserialize::from_value(&serde::parse_value(&json).unwrap()).unwrap();
        for _ in 0..64 {
            assert_eq!(restored.next_u32(), rng.next_u32());
        }
    }

    #[test]
    fn range_sampling_works_through_rand() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let v: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }
}
