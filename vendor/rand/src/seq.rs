//! Slice sampling helpers (`SliceRandom`).

use crate::Rng;

/// Random operations on slices: in-place shuffle and uniform choice.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng).is_some());
    }
}
