//! Concrete generators: a SplitMix64-based [`SmallRng`] and the
//! non-reproducible [`ThreadRng`].

use crate::splitmix::SplitMix64;
use crate::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// A small, fast, seedable generator (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let mut sm = SplitMix64::new(self.state);
        let out = sm.next_u64();
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        out
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self { state: u64::from_le_bytes(seed) }
    }
}

/// A process-global generator seeded from wall-clock time and a counter.
/// Not reproducible — use a seeded generator for anything that matters.
#[derive(Debug)]
pub struct ThreadRng {
    inner: SmallRng,
}

static THREAD_RNG_COUNTER: AtomicU64 = AtomicU64::new(0);

impl ThreadRng {
    pub(crate) fn fresh() -> Self {
        let nanos =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        let count = THREAD_RNG_COUNTER.fetch_add(1, Ordering::Relaxed);
        Self { inner: SmallRng::seed_from_u64(nanos ^ count.rotate_left(32)) }
    }
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
