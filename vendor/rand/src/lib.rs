//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, integer/float range sampling,
//! [`seq::SliceRandom`], and a [`thread_rng`] convenience generator.
//!
//! Distribution quality matches what seeded research code needs —
//! deterministic, well-mixed streams — but makes no attempt to be
//! bit-compatible with upstream `rand`. All tests in this workspace compare
//! run-against-run with fixed seeds, never against golden values from the
//! real crate, so compatibility is not required.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from their full domain via `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1)
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + (end - start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing random sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the type's full domain
    /// (floats: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` by expanding it with SplitMix64,
    /// so nearby seeds yield unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = splitmix::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) mod splitmix {
    /// SplitMix64: the standard seed-expansion generator.
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        pub fn new(state: u64) -> Self {
            Self { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Returns a process-global, non-reproducible generator. Prefer seeded
/// generators everywhere; this exists only for API compatibility.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::fresh()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let vals: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
