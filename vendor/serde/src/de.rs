//! JSON deserialization: types reconstruct themselves from a parsed
//! [`Value`] tree.

use crate::value::{Error, Value};
use std::collections::{BTreeMap, HashMap};

/// Deserialization from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs the value, or explains why it cannot.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn num_text(v: &Value) -> Result<&str, Error> {
    match v {
        Value::Num(text) => Ok(text),
        other => Err(Error::msg(format!("expected number, got {other:?}"))),
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let text = num_text(v)?;
                text.parse::<$t>()
                    .map_err(|e| Error::msg(format!("bad {} literal `{text}`: {e}", stringify!($t))))
            }
        }
    )*};
}

impl_de_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_de_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let text = num_text(v)?;
                text.parse::<$t>()
                    .map_err(|e| Error::msg(format!("bad {} literal `{text}`: {e}", stringify!($t))))
            }
        }
    )*};
}

impl_de_float!(f32, f64);

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("expected single char, got `{s}`"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

fn arr(v: &Value) -> Result<&[Value], Error> {
    match v {
        Value::Arr(items) => Ok(items),
        other => Err(Error::msg(format!("expected array, got {other:?}"))),
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        arr(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = arr(v)?;
        if items.len() != N {
            return Err(Error::msg(format!("expected array of {N}, got {}", items.len())));
        }
        let parsed: Result<Vec<T>, Error> = items.iter().map(T::from_value).collect();
        parsed?.try_into().map_err(|_| Error::msg("array length mismatch after parse"))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = arr(v)?;
        if items.len() != 2 {
            return Err(Error::msg(format!("expected pair, got {} items", items.len())));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = arr(v)?;
        if items.len() != 3 {
            return Err(Error::msg(format!("expected triple, got {} items", items.len())));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?, C::from_value(&items[2])?))
    }
}

fn obj(v: &Value) -> Result<&[(String, Value)], Error> {
    match v {
        Value::Obj(fields) => Ok(fields),
        other => Err(Error::msg(format!("expected object, got {other:?}"))),
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        obj(v)?.iter().map(|(k, fv)| Ok((k.clone(), V::from_value(fv)?))).collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        obj(v)?.iter().map(|(k, fv)| Ok((k.clone(), V::from_value(fv)?))).collect()
    }
}
