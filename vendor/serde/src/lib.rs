//! Offline stand-in for `serde` (+ `serde_derive`).
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal serialization framework with the same *spelling* as serde — a
//! `Serialize`/`Deserialize` trait pair and `#[derive(Serialize,
//! Deserialize)]` macros — but a much simpler contract: serialization writes
//! JSON text directly, deserialization reads from a parsed [`Value`] tree.
//! The `serde_json` vendor crate wraps these into the usual
//! `to_string`/`from_str` entry points.
//!
//! Supported shapes (everything this workspace derives): structs with named
//! fields, unit-variant enums, and the std types implemented below. The
//! derive macros reject anything else at compile time.

mod de;
mod ser;
mod value;

pub use de::Deserialize;
pub use ser::{write_escaped_str, Serialize};
pub use value::{parse_value, Error, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Looks up and deserializes a field of a JSON object — the helper the
/// derive-generated `Deserialize` impls call.
pub fn get_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
    match v {
        Value::Obj(fields) => match fields.iter().find(|(k, _)| k == key) {
            Some((_, fv)) => T::from_value(fv),
            None => Err(Error::msg(format!("missing field `{key}`"))),
        },
        _ => Err(Error::msg(format!("expected object with field `{key}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
            let mut s = String::new();
            v.json_write(&mut s);
            let back = T::from_value(&parse_value(&s).unwrap()).unwrap();
            assert_eq!(back, v, "json was {s}");
        }
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-12345i64);
        roundtrip(3.25f32);
        roundtrip(f32::MIN_POSITIVE);
        roundtrip(true);
        roundtrip(String::from("he said \"hi\"\n\t\\"));
        roundtrip(vec![1usize, 2, 3]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(7u8));
        roundtrip([0xAAu8; 32]);
        roundtrip((1u32, String::from("x")));
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        for v in [f32::INFINITY, f32::NEG_INFINITY] {
            let mut s = String::new();
            v.json_write(&mut s);
            let back = f32::from_value(&parse_value(&s).unwrap()).unwrap();
            assert_eq!(back, v);
        }
        let mut s = String::new();
        f32::NAN.json_write(&mut s);
        assert!(f32::from_value(&parse_value(&s).unwrap()).unwrap().is_nan());
    }

    #[test]
    fn map_roundtrip() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), vec![1.5f32, -2.0]);
        m.insert("b \"q\"".to_string(), vec![]);
        let mut s = String::new();
        m.json_write(&mut s);
        let back: std::collections::BTreeMap<String, Vec<f32>> =
            Deserialize::from_value(&parse_value(&s).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn get_field_reports_missing() {
        let v = parse_value(r#"{"a": 1}"#).unwrap();
        let got: Result<u32, _> = get_field(&v, "b");
        assert!(got.is_err());
        let got: u32 = get_field(&v, "a").unwrap();
        assert_eq!(got, 1);
    }
}
