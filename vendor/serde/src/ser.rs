//! JSON serialization: types write their JSON text directly into a `String`.

use std::collections::{BTreeMap, HashMap};

/// Serialization to JSON text.
pub trait Serialize {
    /// Appends this value's JSON representation to `out`.
    fn json_write(&self, out: &mut String);
}

/// Writes `s` as a quoted, escaped JSON string.
pub fn write_escaped_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_ser_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_ser_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut String) {
                // `{:?}` prints the shortest text that round-trips the float.
                out.push_str(&format!("{self:?}"));
            }
        }
    )*};
}

impl_ser_float!(f32, f64);

impl Serialize for String {
    fn json_write(&self, out: &mut String) {
        write_escaped_str(out, self);
    }
}

impl Serialize for str {
    fn json_write(&self, out: &mut String) {
        write_escaped_str(out, self);
    }
}

impl Serialize for char {
    fn json_write(&self, out: &mut String) {
        write_escaped_str(out, &self.to_string());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_write(&self, out: &mut String) {
        (**self).json_write(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_write(&self, out: &mut String) {
        match self {
            Some(v) => v.json_write(out),
            None => out.push_str("null"),
        }
    }
}

fn write_seq<'a, T: Serialize + 'a>(out: &mut String, items: impl Iterator<Item = &'a T>) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.json_write(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn json_write(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_write(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_write(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        self.0.json_write(out);
        out.push(',');
        self.1.json_write(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        self.0.json_write(out);
        out.push(',');
        self.1.json_write(out);
        out.push(',');
        self.2.json_write(out);
        out.push(']');
    }
}

fn write_map<'a, V: Serialize + 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
) {
    out.push('{');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped_str(out, k);
        out.push(':');
        v.json_write(out);
    }
    out.push('}');
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn json_write(&self, out: &mut String) {
        write_map(out, self.iter());
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn json_write(&self, out: &mut String) {
        // Sort for stable output.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        write_map(out, entries.into_iter());
    }
}
