//! The parsed JSON tree and its recursive-descent parser.

use std::fmt;

/// A serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// A parsed JSON value. Numbers keep their literal text so that `u64::MAX`
/// and friends survive without an `f64` detour.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A numeric literal, kept as text (also admits `inf`/`-inf`/`NaN`).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document into a [`Value`].
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(_) => self.number(),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("non-ascii \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        // Accept JSON numbers plus the non-standard `inf` / `-inf` / `NaN`
        // spellings Rust's float formatter produces.
        while let Some(b) = self.peek() {
            if b.is_ascii_digit()
                || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'i' | b'n' | b'f' | b'N' | b'a')
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(Error::msg(format!("expected value at byte {start}")));
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice").to_string();
        Ok(Value::Num(text))
    }
}
