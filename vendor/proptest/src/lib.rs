//! Offline stand-in for `proptest`: the `proptest!` macro, range/collection
//! strategies, and `prop_assert*` over a deterministic per-test RNG.
//!
//! No shrinking — a failing case reports its case index and the assertion
//! message; cases are reproducible because the RNG is seeded from the test's
//! module path and name, so reruns hit the same inputs.

use std::ops::Range;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub mod test_runner {
    /// How many generated cases each property runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-case RNG (SplitMix64 over a hash of the test name).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test's identity and case index, so every run of the
        /// suite generates the same inputs.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// Generates one value per test case. (No shrinking in this stand-in.)
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }
}

use strategy::Strategy;
use test_runner::TestRng;

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy yielding `true`/`false` with equal probability.
    pub struct Any;

    /// The canonical boolean strategy, as `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification: a fixed size or a `Range<usize>`.
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, size)` — size accepts a `usize`
    /// or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into().0 }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Skips the current case when its precondition does not hold. (The
/// stand-in runner counts skipped cases as passed rather than regenerating.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Fails the current property case with a message (early-returns an `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `prop_assert!` for equality, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(::std::format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        ::std::format!($($fmt)+), l, r));
                }
            }
        }
    };
}

/// `prop_assert!` for inequality, reporting the shared value on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left), stringify!($right), l));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(::std::format!(
                        "{}\n  both: {:?}", ::std::format!($($fmt)+), l));
                }
            }
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)), case);
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("proptest case {case}/{} failed:\n{msg}", config.cases);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn unit_interval() -> impl Strategy<Value = f32> {
        0.0f32..1.0
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn int_ranges_respect_bounds(n in 3usize..9, s in -5i64..5) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-5..5).contains(&s));
        }

        fn float_ranges_respect_bounds(x in -2.0f32..2.0, u in unit_interval()) {
            prop_assert!((-2.0..2.0).contains(&x), "x out of range: {x}");
            prop_assert!((0.0..1.0).contains(&u));
        }

        fn vec_strategy_sizes(v in crate::collection::vec(0u32..10, 2..6),
                              w in crate::collection::vec(crate::bool::ANY, 4)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut a = TestRng::for_case("t::x", 7);
        let mut b = TestRng::for_case("t::x", 7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t::x", 8);
        assert_ne!(TestRng::for_case("t::x", 7).next_u64(), c.next_u64());
    }
}
