//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the shapes this
//! workspace derives:
//!
//! - structs with named fields → JSON objects;
//! - enums whose variants are all unit variants → JSON strings.
//!
//! Anything else (tuple structs, generics, data-carrying variants) panics at
//! compile time with a clear message rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Derives `serde::Serialize` (JSON text writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "::serde::write_escaped_str(out, \"{f}\");\nout.push(':');\n\
                     ::serde::Serialize::json_write(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn json_write(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::write_escaped_str(out, \"{v}\"),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn json_write(&self, out: &mut ::std::string::String) {{\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Derives `serde::Deserialize` (reconstruction from a parsed `Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let inits: String =
                fields.iter().map(|f| format!("{f}: ::serde::get_field(v, \"{f}\")?,\n")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v.as_str() {{\n\
                 ::std::option::Option::Some(s) => match s {{\n{arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(\
                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 ::std::option::Option::None => ::std::result::Result::Err(\
                 ::serde::Error::msg(\"expected string for enum {name}\")),\n}}\n}}\n}}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let keyword = next_ident(&mut tokens).expect("expected `struct` or `enum`");
    let name = next_ident(&mut tokens).expect("expected type name");
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive (vendored): `{name}` must have a braced body \
             (tuple/unit structs unsupported), got {other:?}"
        ),
    };
    match keyword.as_str() {
        "struct" => Item::Struct { name, fields: parse_named_fields(body) },
        "enum" => Item::Enum { name, variants: parse_unit_variants(body) },
        other => panic!("serde_derive (vendored): unexpected item keyword `{other}`"),
    }
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(tokens: &mut TokenIter) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(_)) => {}
            other => panic!("serde_derive (vendored): malformed attribute, got {other:?}"),
        }
    }
}

fn skip_visibility(tokens: &mut TokenIter) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn next_ident(tokens: &mut TokenIter) -> Option<String> {
    match tokens.next() {
        Some(TokenTree::Ident(i)) => Some(i.to_string()),
        _ => None,
    }
}

/// Parses `name: Type, ...` named fields, returning the field names. Types
/// are skipped token-by-token with angle-bracket depth tracking so commas
/// inside `BTreeMap<String, Tensor>` do not split fields.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            return fields;
        }
        skip_visibility(&mut tokens);
        let name = next_ident(&mut tokens)
            .expect("serde_derive (vendored): expected field name (tuple structs unsupported)");
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive (vendored): expected `:` after `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type up to a top-level comma.
        let mut angle_depth = 0usize;
        loop {
            match tokens.peek() {
                None => return fields,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth = angle_depth.saturating_sub(1);
                    } else if c == ',' && angle_depth == 0 {
                        tokens.next();
                        break;
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
}

/// Parses `VariantA, VariantB, ...` requiring every variant to be a unit
/// variant (no payload, no discriminant).
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            return variants;
        }
        let name = next_ident(&mut tokens).expect("serde_derive (vendored): expected variant name");
        match tokens.next() {
            None => {
                variants.push(name);
                return variants;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            other => panic!(
                "serde_derive (vendored): variant `{name}` must be a unit variant \
                 (payloads/discriminants unsupported), got {other:?}"
            ),
        }
    }
}
