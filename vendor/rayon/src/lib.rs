//! Offline stand-in for `rayon`: the `par_iter().map().collect()` subset this
//! workspace uses, executed on `std::thread::scope` with static chunking.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (if set and nonzero), else
//! [`std::thread::available_parallelism`]. Collection preserves input order,
//! so `par_iter().map(f).collect::<Vec<_>>()` is element-for-element
//! identical to the serial `iter().map(f).collect()` — the property the
//! search code's determinism guarantee rests on.

use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice};
}

/// Number of worker threads the pool-less executor will use.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over `items`, returning outputs in input order. Work is split
/// into contiguous chunks, one per worker thread.
fn run_ordered<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items.into_iter();
    loop {
        let c: Vec<T> = items.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let mut results: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("rayon (vendored): worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// A parallel iterator: a captured item list plus a deferred map stage.
pub struct ParIter<T, U, F>
where
    F: Fn(T) -> U,
{
    items: Vec<T>,
    map: F,
}

/// Minimal `ParallelIterator`: `map` composes, `collect` executes.
pub trait ParallelIterator: Sized {
    type Item: Send;

    fn map<U: Send, F: Fn(Self::Item) -> U + Sync + Send>(
        self,
        f: F,
    ) -> impl ParallelIterator<Item = U>;

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C;

    /// Executes `f` for each item (in parallel; completion order unspecified).
    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        let _: Vec<()> = self.map(f).collect();
    }
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync + Send> ParallelIterator for ParIter<T, U, F> {
    type Item = U;

    fn map<V: Send, G: Fn(U) -> V + Sync + Send>(self, g: G) -> impl ParallelIterator<Item = V> {
        let f = self.map;
        ParIter { items: self.items, map: move |t| g(f(t)) }
    }

    fn collect<C: FromParallelIterator<U>>(self) -> C {
        C::from_ordered_vec(run_ordered(self.items, self.map))
    }
}

/// Types collectible from a parallel iterator (order-preserving).
pub trait FromParallelIterator<T> {
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Self {
        v
    }
}

/// Entry point: `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T, T, fn(T) -> T>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter { items: self, map: identity }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize, usize, fn(usize) -> usize>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter { items: self.collect(), map: identity }
    }
}

fn identity<T>(t: T) -> T {
    t
}

/// Entry point: `.par_iter()` on slices (yields `&T`).
pub trait ParallelSlice<T: Sync> {
    #[allow(clippy::type_complexity)]
    fn par_iter<'a>(&'a self) -> ParIter<&'a T, &'a T, fn(&'a T) -> &'a T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter<'a>(&'a self) -> ParIter<&'a T, &'a T, fn(&'a T) -> &'a T> {
        ParIter { items: self.iter().collect(), map: identity::<&'a T> }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let squared: Vec<u64> = xs.par_iter().map(|x| x * x).collect();
        let expect: Vec<u64> = xs.iter().map(|x| x * x).collect();
        assert_eq!(squared, expect);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (0..17usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (1..18).collect::<Vec<_>>());
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let strings: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let lens: Vec<usize> = strings.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 1, 1]);
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<i64> = (0..8usize).into_par_iter().map(|i| i as i64).map(|i| i * 10).collect();
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
