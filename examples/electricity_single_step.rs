//! Energy scenario: single-step forecasting (the paper's P-168/Q-1 (3rd)
//! protocol, Table 8) on an Electricity-like dataset, reporting RRSE and
//! CORR, with a decomposition-transformer baseline for comparison.
//!
//! ```sh
//! cargo run --release --example electricity_single_step
//! ```

use autocts::prelude::*;
use autocts::AutoCts;
use octs_baselines::{DecompTransformerLite, DecompVariant};
use octs_model::train_forecaster;

fn main() {
    // Pre-train on energy-domain sources.
    let sources: Vec<ForecastTask> = ["ETTh1", "ETTm1", "Solar-Energy"]
        .iter()
        .map(|name| {
            let mut p = octs_data::profile_by_name(name).expect("profile exists");
            p.n = p.n.min(5);
            p.t = p.t.min(700);
            ForecastTask::new(p.generate(0), ForecastSetting::single(24, 3), 0.6, 0.2, 4)
        })
        .collect();

    let mut cfg = AutoCtsConfig::test();
    cfg.space = JointSpace::scaled();
    let mut sys = AutoCts::new(cfg);
    println!("pre-training on {} energy source tasks (single-step) ...", sources.len());
    let pre = PretrainConfig {
        l_shared: 5,
        l_random: 5,
        epochs: 5,
        label_cfg: TrainConfig { epochs: 3, max_train_windows: 24, ..TrainConfig::test() },
        ..PretrainConfig::test()
    };
    sys.pretrain(sources, &pre);

    // The unseen Electricity-like target, single-step: predict the 3rd step
    // after a long history (P scaled from the paper's 168).
    let mut elec = octs_data::profile_by_name("Electricity").expect("profile exists");
    elec.n = 6;
    elec.t = 900;
    let task = ForecastTask::new(elec.generate(1), ForecastSetting::single(24, 3), 0.6, 0.2, 4);
    println!("unseen task: {}", task.id());

    let train_cfg = TrainConfig { epochs: 5, max_train_windows: 48, ..TrainConfig::test() };
    let evolve = EvolveConfig { k_s: 48, generations: 2, top_k: 2, ..EvolveConfig::test() };
    let out = sys.search(&task, &evolve, &train_cfg);
    println!(
        "AutoCTS++ (zero-shot): RRSE {:.4}  CORR {:.4}",
        out.best_report.test.rrse, out.best_report.test.corr
    );

    let dims = ModelDims::new(task.data.n(), task.data.f(), task.setting);
    let mut fed = DecompTransformerLite::new(dims, 12, 16, DecompVariant::Fedformer, 0);
    let base = train_forecaster(&mut fed, &task, &train_cfg);
    println!("FEDformer-lite:        RRSE {:.4}  CORR {:.4}", base.test.rrse, base.test.corr);

    println!("\nselected ST-block:\n{}", autocts::render(&out.best));
}
