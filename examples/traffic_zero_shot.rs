//! Traffic scenario: pre-train on enriched source tasks (the paper's PEMS /
//! METR-LA style profiles), then zero-shot search models for an unseen
//! PEMS-BAY-like dataset under two forecasting settings — comparing against
//! a transferred AutoCTS+ model, exactly the Table 5/6 protocol in miniature.
//!
//! ```sh
//! cargo run --release --example traffic_zero_shot
//! ```

use autocts::prelude::*;
use autocts::AutoCts;
use octs_model::train_forecaster;

fn main() {
    // Source tasks via the paper's task-enrichment method (Fig. 5): subsets
    // of traffic + energy profiles with reconstructed adjacency.
    let profiles: Vec<DatasetProfile> = octs_data::source_profiles()
        .into_iter()
        .filter(|p| ["PEMS03", "PEMS08", "METR-LA", "ETTh1"].contains(&p.name.as_str()))
        .map(|mut p| {
            p.n = p.n.min(6);
            p.t = p.t.min(600);
            p
        })
        .collect();
    let enrich = EnrichConfig {
        subsets_per_dataset: 2,
        settings: vec![ForecastSetting::multi(6, 6)],
        stride: 4,
        ..EnrichConfig::default()
    };
    let tasks = enrich_tasks(&profiles, &enrich);
    println!("enriched {} profiles into {} pre-training tasks", profiles.len(), tasks.len());

    let mut cfg = AutoCtsConfig::test();
    cfg.space = JointSpace::scaled();
    let mut sys = AutoCts::new(cfg);
    let pre = PretrainConfig {
        l_shared: 6,
        l_random: 6,
        epochs: 6,
        label_cfg: TrainConfig { epochs: 3, max_train_windows: 24, ..TrainConfig::test() },
        ..PretrainConfig::test()
    };
    println!(
        "pre-training T-AHC ({} labelled candidates per task) ...",
        pre.l_shared + pre.l_random
    );
    let report = sys.pretrain(tasks, &pre);
    println!("  holdout pairwise accuracy: {:.2}", report.holdout_accuracy);

    // The unseen target: PEMS-BAY-like, scaled further down for the example.
    let mut bay = octs_data::profile_by_name("PEMS-BAY").expect("profile exists");
    bay.n = 6;
    bay.t = 700;
    let train_cfg = TrainConfig { epochs: 5, max_train_windows: 48, ..TrainConfig::test() };

    for setting in [ForecastSetting::multi(6, 6), ForecastSetting::multi(12, 12)] {
        let task = ForecastTask::new(bay.generate(1), setting, 0.7, 0.1, 4);
        println!("\n=== unseen task {} ===", task.id());

        let evolve = EvolveConfig { k_s: 48, generations: 2, top_k: 2, ..EvolveConfig::test() };
        let out = sys.search(&task, &evolve, &train_cfg);
        println!(
            "AutoCTS++ (zero-shot): MAE {:.3}  RMSE {:.3}  (search {:?}, train {:?})",
            out.best_report.test.mae,
            out.best_report.test.rmse,
            out.timing.search(),
            out.timing.train
        );

        // Transferred AutoCTS+ baseline: the fixed model searched elsewhere.
        let dims = ModelDims::new(task.data.n(), task.data.f(), task.setting);
        let mut transferred =
            Forecaster::new(octs_baselines::autocts_plus(), dims, &task.data.adjacency, 0);
        let base = train_forecaster(&mut transferred, &task, &train_cfg);
        println!("AutoCTS+ (transferred): MAE {:.3}  RMSE {:.3}", base.test.mae, base.test.rmse);

        println!("searched block:\n{}", autocts::render(&out.best));
    }
}
