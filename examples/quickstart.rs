//! Quickstart: pre-train a tiny AutoCTS++ system and run a zero-shot search
//! on an unseen task.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use autocts::prelude::*;
use autocts::AutoCts;

fn main() {
    // 1. Build the system with small, fast settings.
    let mut sys = AutoCts::new(AutoCtsConfig::test());

    // 2. Pre-train once on a couple of source tasks. In production this is
    //    the expensive offline step (Algorithm 1); here it takes seconds.
    let source_tasks: Vec<ForecastTask> =
        [("metro-traffic", Domain::Traffic, 11u64), ("city-energy", Domain::Energy, 12)]
            .into_iter()
            .map(|(name, domain, seed)| {
                let profile =
                    DatasetProfile::custom(name, domain, 4, 260, 24, 0.3, 0.1, 10.0, seed);
                ForecastTask::new(profile.generate(0), ForecastSetting::multi(6, 3), 0.6, 0.2, 2)
            })
            .collect();

    println!("pre-training T-AHC on {} source tasks ...", source_tasks.len());
    let report = sys.pretrain(source_tasks, &PretrainConfig::test());
    println!(
        "  pre-training done: {} epochs, holdout pairwise accuracy {:.2}",
        report.epoch_losses.len(),
        report.holdout_accuracy
    );

    // 3. Zero-shot search on an UNSEEN task (new dataset, new setting).
    let unseen_profile =
        DatasetProfile::custom("bike-demand", Domain::Demand, 4, 260, 24, 0.35, 0.2, 12.0, 99);
    let unseen =
        ForecastTask::new(unseen_profile.generate(0), ForecastSetting::multi(6, 3), 0.6, 0.2, 2);

    println!("zero-shot searching on unseen task {} ...", unseen.id());
    let evolve = EvolveConfig { k_s: 32, generations: 2, top_k: 2, ..EvolveConfig::test() };
    let outcome = sys.search(&unseen, &evolve, &TrainConfig::test());

    println!(
        "  search: embed {:?}, rank {:?}, train {:?}",
        outcome.timing.embed, outcome.timing.rank, outcome.timing.train
    );
    println!("selected ST-block:\n{}", autocts::render(&outcome.best));
    println!(
        "test metrics: MAE {:.3}  RMSE {:.3}  MAPE {:.2}%",
        outcome.best_report.test.mae, outcome.best_report.test.rmse, outcome.best_report.test.mape
    );
}
