//! Offline comparator pre-training with checkpointing: run Algorithm 1,
//! save the pre-trained T-AHC, reload it in a fresh process-like state and
//! verify it ranks identically — the deployment workflow the paper targets
//! (pre-train once on GPUs, ship the comparator, search anywhere).
//!
//! ```sh
//! cargo run --release --example pretrain_comparator -- /tmp/tahc.json
//! ```

use autocts::prelude::*;
use autocts::AutoCts;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "/tmp/autocts_tahc.json".to_string());

    // Enrich a few source profiles into pre-training tasks.
    let profiles: Vec<DatasetProfile> = octs_data::source_profiles()
        .into_iter()
        .take(3)
        .map(|mut p| {
            p.n = p.n.min(5);
            p.t = p.t.min(600);
            p
        })
        .collect();
    let enrich = EnrichConfig {
        subsets_per_dataset: 2,
        settings: vec![ForecastSetting::multi(6, 3)],
        stride: 4,
        ..EnrichConfig::default()
    };
    let tasks = enrich_tasks(&profiles, &enrich);
    println!("{} pre-training tasks from {} profiles", tasks.len(), profiles.len());

    let mut sys = AutoCts::new(AutoCtsConfig::test());
    let pre = PretrainConfig {
        l_shared: 6,
        l_random: 6,
        epochs: 8,
        label_cfg: TrainConfig { epochs: 3, max_train_windows: 24, ..TrainConfig::test() },
        ..PretrainConfig::test()
    };
    let report = sys.pretrain(tasks.clone(), &pre);
    println!("epoch losses: {:?}", report.epoch_losses);
    println!("holdout pairwise accuracy: {:.3}", report.holdout_accuracy);

    sys.save(&path).expect("checkpoint written");
    println!("saved pre-trained comparator to {path}");

    // Reload and verify identical ranking decisions.
    let mut restored = AutoCts::load(&path).expect("checkpoint read");
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    let a = sys.cfg.space.sample(&mut rng);
    let b = sys.cfg.space.sample(&mut rng);
    let prelim = sys.embedder.preliminary(&tasks[0]);
    let same = sys.tahc.compare(Some(&prelim), &a, &b)
        == restored.tahc.compare(Some(&restored.embedder.preliminary(&tasks[0])), &a, &b);
    println!("restored comparator agrees with the original: {same}");
    assert!(same);
}
